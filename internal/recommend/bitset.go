package recommend

import "math/bits"

// bitset is a fixed-width set of row or column indices backed by uint64
// words. The prediction kernel keeps one per matrix row and column to
// mark known entries, so the similarity and prediction inner loops scan
// words and pop set bits instead of testing every cell for NaN.
type bitset []uint64

// bitsetWords returns the number of uint64 words needed for n bits.
func bitsetWords(n int) int { return (n + 63) / 64 }

// newBitset returns an empty bitset able to hold n bits.
func newBitset(n int) bitset { return make(bitset, bitsetWords(n)) }

// set marks bit i.
func (b bitset) set(i int) { b[i>>6] |= 1 << uint(i&63) }

// get reports whether bit i is set.
func (b bitset) get(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

// reset clears every bit.
func (b bitset) reset() {
	for i := range b {
		b[i] = 0
	}
}

// count returns the number of set bits.
func (b bitset) count() int {
	c := 0
	for _, w := range b {
		c += bits.OnesCount64(w)
	}
	return c
}

// any reports whether any bit is set.
func (b bitset) any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// intersects3 reports whether a & b & c has any set bit — the kernel's
// dirty-pair test: does the overlap of two columns (a, b) touch any row
// whose mean changed (c)?
func intersects3(a, b, c []uint64) bool {
	for i := range a {
		if a[i]&b[i]&c[i] != 0 {
			return true
		}
	}
	return false
}

// tailMask returns the mask selecting the valid bits of the last word of
// an n-bit bitset (all ones when n is a multiple of 64).
func tailMask(n int) uint64 {
	if r := n & 63; r != 0 {
		return 1<<uint(r) - 1
	}
	return ^uint64(0)
}
