package recommend

import (
	"math"
	"math/rand"
)

// Mask returns a copy of dense with only a sampled fraction of entries
// kept and the rest NaN — the sparse observation matrix used to train the
// predictor in the paper's Figure 12 accuracy sweep. Sampling is uniform
// without replacement over all entries. fraction is clamped to [0, 1].
func Mask(dense [][]float64, fraction float64, r *rand.Rand) [][]float64 {
	n := len(dense)
	out := make([][]float64, n)
	var cells [][2]int
	for i := range dense {
		out[i] = make([]float64, len(dense[i]))
		for j := range dense[i] {
			out[i][j] = math.NaN()
			cells = append(cells, [2]int{i, j})
		}
	}
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	r.Shuffle(len(cells), func(a, b int) { cells[a], cells[b] = cells[b], cells[a] })
	keep := int(math.Round(fraction * float64(len(cells))))
	for _, c := range cells[:keep] {
		out[c[0]][c[1]] = dense[c[0]][c[1]]
	}
	return out
}

// MaskPairs is like Mask but samples unordered colocations: keeping pair
// (i, j) reveals both d[i][j] and d[j][i], matching how the profiler
// observes both sides of one colocated run. This is the paper's actual
// sampling unit ("100 sampled colocations" for 20 jobs at 25%).
func MaskPairs(dense [][]float64, fraction float64, r *rand.Rand) [][]float64 {
	n := len(dense)
	out := make([][]float64, n)
	for i := range dense {
		out[i] = make([]float64, len(dense[i]))
		for j := range dense[i] {
			out[i][j] = math.NaN()
		}
	}
	var pairs [][2]int
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	r.Shuffle(len(pairs), func(a, b int) { pairs[a], pairs[b] = pairs[b], pairs[a] })
	keep := int(math.Round(fraction * float64(len(pairs))))
	for _, p := range pairs[:keep] {
		i, j := p[0], p[1]
		out[i][j] = dense[i][j]
		out[j][i] = dense[j][i]
	}
	return out
}
