package textplot

import (
	"math"
	"strings"
	"testing"

	"cooper/internal/stats"
)

func TestBar(t *testing.T) {
	out := Bar([]string{"a", "bb"}, []float64{1, 2}, 10, "%.1f")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[1], "##########") {
		t.Errorf("max bar should be full width: %q", lines[1])
	}
	if !strings.Contains(lines[0], "#####") || strings.Contains(lines[0], "######") {
		t.Errorf("half bar expected: %q", lines[0])
	}
	if !strings.Contains(lines[0], "1.0") {
		t.Errorf("value missing: %q", lines[0])
	}
}

func TestBarEdgeCases(t *testing.T) {
	if out := Bar([]string{"a"}, []float64{1, 2}, 10, ""); !strings.Contains(out, "mismatch") {
		t.Error("mismatch not reported")
	}
	out := Bar([]string{"neg"}, []float64{-1}, 0, "")
	if strings.Contains(out, "#") {
		t.Errorf("negative value should render empty bar: %q", out)
	}
	out = Bar([]string{"zero"}, []float64{0}, 5, "")
	if strings.Contains(out, "#") {
		t.Errorf("zero should render empty bar: %q", out)
	}
}

func TestPairedBar(t *testing.T) {
	out := PairedBar([]string{"x"}, []float64{2}, []float64{4}, "pen", "bw", 8)
	if !strings.Contains(out, "pen") || !strings.Contains(out, "bw") {
		t.Errorf("header missing: %q", out)
	}
	if !strings.Contains(out, "####") {
		t.Errorf("first bar missing: %q", out)
	}
	if !strings.Contains(out, "========") {
		t.Errorf("second bar missing: %q", out)
	}
	if out := PairedBar([]string{"x"}, nil, nil, "", "", 4); !strings.Contains(out, "mismatch") {
		t.Error("mismatch not reported")
	}
}

func TestBox(t *testing.T) {
	boxes := []stats.Boxplot{stats.NewBoxplot([]float64{1, 2, 3, 4, 5})}
	out := Box([]string{"p"}, boxes, 0, 6, 30)
	if !strings.Contains(out, "=") || !strings.Contains(out, "|") || !strings.Contains(out, "-") {
		t.Errorf("box glyphs missing: %q", out)
	}
	if !strings.Contains(out, "med=3") {
		t.Errorf("median label missing: %q", out)
	}
	if out := Box([]string{"a", "b"}, boxes, 0, 1, 10); !strings.Contains(out, "mismatch") {
		t.Error("mismatch not reported")
	}
	// Degenerate range must not panic.
	_ = Box([]string{"p"}, boxes, 5, 5, 10)
}

func TestTable(t *testing.T) {
	out := Table([]string{"col", "value"}, [][]string{{"a", "1"}, {"bbbb", "22"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("separator missing: %q", lines[1])
	}
	if !strings.Contains(lines[3], "bbbb") {
		t.Errorf("row missing: %q", lines[3])
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Errorf("empty series = %q, want empty", got)
	}
	if got := Sparkline([]float64{3, 3, 3}); got != "▁▁▁" {
		t.Errorf("flat series = %q, want lowest blocks", got)
	}
	got := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if got != "▁▂▃▄▅▆▇█" {
		t.Errorf("ramp = %q, want one of each glyph", got)
	}
	if got := Sparkline([]float64{0, math.NaN(), 1}); got != "▁ █" {
		t.Errorf("NaN series = %q, want gap", got)
	}
}
