// Package textplot renders experiment results as plain-text charts so the
// benchmark harness can print figure-shaped output (bar charts, boxplots,
// series tables) straight to a terminal.
package textplot

import (
	"fmt"
	"math"
	"strings"

	"cooper/internal/stats"
)

// Bar renders a horizontal bar chart: one row per label, bar length
// proportional to value, with the numeric value appended. Negative values
// render as empty bars (their number still shows). width is the maximum
// bar width in runes.
func Bar(labels []string, values []float64, width int, format string) string {
	if len(labels) != len(values) {
		return "textplot: label/value length mismatch\n"
	}
	if width <= 0 {
		width = 40
	}
	if format == "" {
		format = "%.3f"
	}
	maxVal := 0.0
	labelW := 0
	for i, l := range labels {
		if values[i] > maxVal {
			maxVal = values[i]
		}
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	for i, l := range labels {
		n := 0
		if maxVal > 0 && values[i] > 0 {
			n = int(math.Round(values[i] / maxVal * float64(width)))
		}
		fmt.Fprintf(&b, "%-*s |%s%s %s\n",
			labelW, l,
			strings.Repeat("#", n),
			strings.Repeat(" ", width-n),
			fmt.Sprintf(format, values[i]))
	}
	return b.String()
}

// PairedBar renders two aligned value columns per label (e.g. penalty rank
// and bandwidth rank in the paper's Figure 8).
func PairedBar(labels []string, a, b []float64, nameA, nameB string, width int) string {
	if len(labels) != len(a) || len(labels) != len(b) {
		return "textplot: label/value length mismatch\n"
	}
	if width <= 0 {
		width = 24
	}
	maxVal := math.Max(stats.Max(a), stats.Max(b))
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	bar := func(v float64, ch string) string {
		n := 0
		if maxVal > 0 && v > 0 {
			n = int(math.Round(v / maxVal * float64(width)))
		}
		return strings.Repeat(ch, n) + strings.Repeat(" ", width-n)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-*s  %-*s  %-*s\n", labelW, "", width, nameA, width, nameB)
	for i, l := range labels {
		fmt.Fprintf(&sb, "%-*s  %s  %s %5.1f vs %5.1f\n",
			labelW, l, bar(a[i], "#"), bar(b[i], "="), a[i], b[i])
	}
	return sb.String()
}

// Box renders boxplots, one row per label, on a shared horizontal axis
// from lo to hi: whiskers as '-', box as '=', median as '|'.
func Box(labels []string, boxes []stats.Boxplot, lo, hi float64, width int) string {
	if len(labels) != len(boxes) {
		return "textplot: label/box length mismatch\n"
	}
	if width <= 0 {
		width = 60
	}
	if hi <= lo {
		hi = lo + 1
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	pos := func(v float64) int {
		p := int(math.Round((v - lo) / (hi - lo) * float64(width-1)))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	var sb strings.Builder
	for i, l := range labels {
		row := make([]byte, width)
		for k := range row {
			row[k] = ' '
		}
		bx := boxes[i]
		for k := pos(bx.Min); k <= pos(bx.Max); k++ {
			row[k] = '-'
		}
		for k := pos(bx.Q1); k <= pos(bx.Q3); k++ {
			row[k] = '='
		}
		row[pos(bx.Median)] = '|'
		fmt.Fprintf(&sb, "%-*s [%s] med=%.3g iqr=[%.3g,%.3g] n=%d\n",
			labelW, l, row, bx.Median, bx.Q1, bx.Q3, bx.N)
	}
	return sb.String()
}

// sparkGlyphs are the eight block heights a sparkline quantizes into.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a one-line block-character strip — the
// live-dashboard form of a time series. Values are normalized to the
// series' own min..max; a flat series renders at the lowest block, and
// NaNs render as spaces. An empty series yields an empty string.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var sb strings.Builder
	for _, v := range values {
		switch {
		case math.IsNaN(v):
			sb.WriteByte(' ')
		case hi <= lo:
			sb.WriteRune(sparkGlyphs[0])
		default:
			k := int((v - lo) / (hi - lo) * float64(len(sparkGlyphs)-1))
			sb.WriteRune(sparkGlyphs[k])
		}
	}
	return sb.String()
}

// Table renders rows as a fixed-width table with a header.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
			}
		}
		sb.WriteString("\n")
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
	return sb.String()
}
