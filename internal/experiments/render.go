package experiments

import (
	"fmt"
	"strings"

	"cooper/internal/stats"
	"cooper/internal/textplot"
)

// RenderTable1 formats the catalog table.
func RenderTable1(rows []Table1Row) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.ID), r.Name, r.Application, r.Dataset,
			string(r.Suite),
			fmt.Sprintf("%.2f", r.PaperGBps),
			fmt.Sprintf("%.2f", r.MeasuredGBps),
		})
	}
	return "Table I: applications, datasets, memory intensity (paper vs simulated)\n" +
		textplot.Table([]string{"ID", "Name", "Application", "Dataset", "Suite",
			"Paper GB/s", "Measured GB/s"}, cells)
}

// RenderProfile formats one policy's Figure 1/7 panel.
func RenderProfile(policyName string, profile []AppPenalty) string {
	labels := make([]string, len(profile))
	values := make([]float64, len(profile))
	for i, ap := range profile {
		labels[i] = ap.App
		values[i] = ap.MeanPenalty
	}
	corr := fairnessCorrelation(profile)
	return fmt.Sprintf("%s — mean throughput penalty by application "+
		"(ordered by contentiousness; fairness corr %.2f)\n%s",
		policyName, corr, textplot.Bar(labels, values, 40, "%.3f"))
}

// RenderFigure7 formats all policies' panels.
func RenderFigure7(results []Figure7Result) string {
	var sb strings.Builder
	sb.WriteString("Figure 7: contention-induced losses by policy\n\n")
	for _, r := range results {
		sb.WriteString(RenderProfile(r.Policy, r.Profile))
		sb.WriteString("\n")
	}
	return sb.String()
}

// RenderFigure8 formats the rank-fairness comparison.
func RenderFigure8(results []Figure8Result) string {
	var sb strings.Builder
	sb.WriteString("Figure 8: ranked penalties (#) vs ranked bandwidth (=); " +
		"tracking bars mean fair attribution\n\n")
	for _, r := range results {
		fmt.Fprintf(&sb, "%s (rank correlation %.2f)\n", r.Policy, r.RankCorr)
		sb.WriteString(textplot.PairedBar(r.Apps, r.PenaltyRanks, r.BandwidthRank,
			"penalty rank", "bandwidth rank", 22))
		sb.WriteString("\n")
	}
	return sb.String()
}

// RenderMotivation formats the Figures 2-3 comparison.
func RenderMotivation(m *MotivationResult) string {
	var sb strings.Builder
	sb.WriteString("Figures 2-3: performance- vs stability-centric colocation\n\n")
	row := func(o UserOutcome) []string {
		return []string{o.Label, o.User, o.Partner,
			fmt.Sprintf("%.3f", o.Penalty),
			fmt.Sprintf("%.1f", o.BandwidthGBps)}
	}
	header := []string{"User", "Job", "Partner", "Penalty", "GB/s"}
	var perf, stab [][]string
	for _, o := range m.Performance {
		perf = append(perf, row(o))
	}
	for _, o := range m.Stability {
		stab = append(stab, row(o))
	}
	fmt.Fprintf(&sb, "Performance-optimal (blocking pairs: %d, fairness corr %.2f)\n%s\n",
		m.PerformanceBlocking, m.PerformanceFairness, textplot.Table(header, perf))
	fmt.Fprintf(&sb, "Stability-optimal (blocking pairs: %d, fairness corr %.2f)\n%s",
		m.StabilityBlocking, m.StabilityFairness, textplot.Table(header, stab))
	return sb.String()
}

// RenderFigure5 formats the worked marriage example.
func RenderFigure5(tr *Figure5Trace) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 5: stable marriage worked example (%d rounds)\n", tr.Rounds)
	for m := 1; m <= len(tr.Pairs); m++ {
		key := fmt.Sprintf("m%d", m)
		fmt.Fprintf(&sb, "  %s -> %s\n", key, tr.Pairs[key])
	}
	return sb.String()
}

// RenderFigure9 formats the preference-satisfaction bars.
func RenderFigure9(results []Figure9Result) string {
	var cells [][]string
	for _, r := range results {
		total := r.Improved + r.Unchanged + r.Degraded
		cells = append(cells, []string{
			r.Label(),
			fmt.Sprintf("%d", r.Improved),
			fmt.Sprintf("%d", r.Unchanged),
			fmt.Sprintf("%d", r.Degraded),
			fmt.Sprintf("%.0f%%", 100*float64(r.Improved+r.Unchanged)/float64(total)),
		})
	}
	return "Figure 9: agents improved/unchanged/degraded when adopting stable policies\n" +
		textplot.Table([]string{"Switch", "Improved", "Unchanged", "Degraded",
			"At least as well"}, cells)
}

// RenderFigure10 formats blocking-pair boxplots per policy and alpha.
func RenderFigure10(results []Figure10Result) string {
	var sb strings.Builder
	sb.WriteString("Figure 10: agents recommending break-away vs alpha (break-away threshold)\n\n")
	for _, r := range results {
		fmt.Fprintf(&sb, "%s\n", r.Policy)
		labels := make([]string, len(r.Alphas))
		var hi float64
		for i, a := range r.Alphas {
			labels[i] = fmt.Sprintf("alpha=%.0f%%", a*100)
			if r.Boxes[i].Max > hi {
				hi = r.Boxes[i].Max
			}
			for _, o := range r.Boxes[i].Outliers {
				if o > hi {
					hi = o
				}
			}
		}
		sb.WriteString(textplot.Box(labels, r.Boxes, 0, hi*1.05+1, 50))
		sb.WriteString("\n")
	}
	return sb.String()
}

// RenderFigure11 formats the sensitivity boxplots grouped by mix.
func RenderFigure11(cells []Figure11Cell) string {
	var sb strings.Builder
	sb.WriteString("Figure 11: penalty distributions by workload mix and policy\n\n")
	byMix := make(map[string][]Figure11Cell)
	var order []string
	for _, c := range cells {
		if len(byMix[c.Mix]) == 0 {
			order = append(order, c.Mix)
		}
		byMix[c.Mix] = append(byMix[c.Mix], c)
	}
	for _, mix := range order {
		group := byMix[mix]
		fmt.Fprintf(&sb, "%s\n", mix)
		labels := make([]string, len(group))
		boxes := make([]stats.Boxplot, len(group))
		var hi float64
		for i, c := range group {
			labels[i] = c.Policy
			boxes[i] = c.Box
			if c.Box.Max > hi {
				hi = c.Box.Max
			}
		}
		sb.WriteString(textplot.Box(labels, boxes, 0, hi*1.05+0.01, 50))
		sb.WriteString("\n")
	}
	return sb.String()
}

// RenderFigure12 formats the prediction-accuracy sweep.
func RenderFigure12(points []Figure12Point) string {
	var cells [][]string
	for _, p := range points {
		cells = append(cells, []string{
			fmt.Sprintf("%.0f%%", p.Fraction*100),
			fmt.Sprintf("%d", p.Iterations),
			fmt.Sprintf("%.1f%%", p.Accuracy*100),
		})
	}
	return "Figure 12: preference prediction accuracy vs sampled colocations\n" +
		textplot.Table([]string{"Sampled", "Iterations", "Correct prefs"}, cells)
}

// RenderFigure13 formats the scalability analysis.
func RenderFigure13(points []Figure13Point) string {
	var cells [][]string
	for _, p := range points {
		cells = append(cells, []string{
			fmt.Sprintf("%d", p.Population),
			fmt.Sprintf("%.2f", p.FairnessCorr),
			fmt.Sprintf("%.4f", p.PenaltyStdDev),
		})
	}
	return "Figure 13: SMR fairness vs population size\n" +
		textplot.Table([]string{"Agents", "Fairness corr", "Within-app stddev"}, cells)
}

// RenderFigure14 formats the Shapley appendix example.
func RenderFigure14(r *Figure14Result) string {
	var sb strings.Builder
	sb.WriteString("Figure 14 (appendix): Shapley example, I = {1, 2, 3}\n")
	var cells [][]string
	for _, row := range r.Rows {
		cells = append(cells, []string{
			strings.Join(row.Order, ","),
			fmt.Sprintf("%.0f", row.Marginals[0]),
			fmt.Sprintf("%.0f", row.Marginals[1]),
			fmt.Sprintf("%.0f", row.Marginals[2]),
		})
	}
	cells = append(cells, []string{"phi = E[M]",
		fmt.Sprintf("%.1f", r.Shapley[0]),
		fmt.Sprintf("%.1f", r.Shapley[1]),
		fmt.Sprintf("%.1f", r.Shapley[2])})
	sb.WriteString(textplot.Table([]string{"Permutation", "MA", "MB", "MC"}, cells))
	return sb.String()
}
