package experiments

import (
	"fmt"

	"cooper/internal/policy"
	"cooper/internal/stats"
	"cooper/internal/workload"
)

// Table1Row is one catalog entry of the paper's Table I, with both the
// paper's published bandwidth and the bandwidth measured standalone on the
// simulated machine.
type Table1Row struct {
	ID           int
	Name         string
	Application  string
	Dataset      string
	Suite        workload.Suite
	PaperGBps    float64
	MeasuredGBps float64
}

// Table1 reproduces the paper's Table I on the simulated machine.
func (l *Lab) Table1() []Table1Row {
	rows := make([]Table1Row, 0, len(l.Catalog))
	for _, j := range l.Catalog {
		rows = append(rows, Table1Row{
			ID:           j.ID,
			Name:         j.Name,
			Application:  j.Application,
			Dataset:      j.Dataset,
			Suite:        j.Suite,
			PaperGBps:    j.BandwidthGBps,
			MeasuredGBps: l.Machine.Solo(j.Model).BandwidthBytes / 1e9,
		})
	}
	return rows
}

// AppPenalty is one bar of the paper's Figures 1 and 7: a reported
// application's bandwidth demand and its mean colocation penalty under
// some policy, averaged over the colocations that include it.
type AppPenalty struct {
	App           string
	BandwidthGBps float64
	MeanPenalty   float64
	StdDev        float64
	Samples       int
}

// PenaltyProfile colocates a population of n uniformly sampled jobs with
// policy p and reports, for each of the paper's eleven reported
// applications (ordered by increasing contentiousness), the mean penalty
// suffered by agents running it — the data behind Figures 1 and 7.
func (l *Lab) PenaltyProfile(p policy.Policy, n int, seed int64) ([]AppPenalty, error) {
	pop := l.uniformPopulation(n, seed)
	match, d, err := l.assign(p, pop, stats.NewRand(seed+1))
	if err != nil {
		return nil, err
	}
	pens := agentPenalties(match, d)
	byApp := make(map[string][]float64)
	for i, j := range pop.Jobs {
		byApp[j.Name] = append(byApp[j.Name], pens[i])
	}
	var out []AppPenalty
	for _, name := range workload.ReportedApps {
		job, err := l.mustFind(name)
		if err != nil {
			return nil, err
		}
		samples := byApp[name]
		ap := AppPenalty{
			App:           name,
			BandwidthGBps: job.BandwidthGBps,
			Samples:       len(samples),
		}
		if len(samples) > 0 {
			ap.MeanPenalty = stats.Mean(samples)
			ap.StdDev = stats.StdDev(samples)
		}
		out = append(out, ap)
	}
	return out, nil
}

// Figure7Result holds one policy's per-application penalty profile.
type Figure7Result struct {
	Policy  string
	Profile []AppPenalty
	// FairnessCorr is the Spearman correlation between applications'
	// bandwidth demands and mean penalties — the quantitative version of
	// "bars extend up and to the right".
	FairnessCorr float64
}

// Figure7 runs the per-application fairness profile (Figure 7; Figure 1
// is its GR and CO subset) for all five policies over a population of n
// uniformly sampled jobs.
func (l *Lab) Figure7(n int, seed int64) ([]Figure7Result, error) {
	var out []Figure7Result
	for _, p := range policy.All() {
		profile, err := l.PenaltyProfile(p, n, seed)
		if err != nil {
			return nil, fmt.Errorf("policy %s: %w", p.Name(), err)
		}
		out = append(out, Figure7Result{
			Policy:       p.Name(),
			Profile:      profile,
			FairnessCorr: fairnessCorrelation(profile),
		})
	}
	return out, nil
}

// fairnessCorrelation computes Spearman correlation between bandwidth
// demand and mean penalty across the profile's applications.
func fairnessCorrelation(profile []AppPenalty) float64 {
	var bw, pen []float64
	for _, ap := range profile {
		if ap.Samples == 0 {
			continue
		}
		bw = append(bw, ap.BandwidthGBps)
		pen = append(pen, ap.MeanPenalty)
	}
	return stats.Spearman(bw, pen)
}

// Figure8Result ranks a policy's per-application penalties against
// bandwidth demands: when the penalty ranking tracks the bandwidth
// ranking, cost attribution is fair.
type Figure8Result struct {
	Policy        string
	Apps          []string
	PenaltyRanks  []float64
	BandwidthRank []float64
	RankCorr      float64 // Spearman of the two rankings
}

// Figure8 derives rank-fairness from Figure 7 profiles.
func Figure8(results []Figure7Result) []Figure8Result {
	var out []Figure8Result
	for _, r := range results {
		var apps []string
		var pen, bw []float64
		for _, ap := range r.Profile {
			if ap.Samples == 0 {
				continue
			}
			apps = append(apps, ap.App)
			pen = append(pen, ap.MeanPenalty)
			bw = append(bw, ap.BandwidthGBps)
		}
		out = append(out, Figure8Result{
			Policy:        r.Policy,
			Apps:          apps,
			PenaltyRanks:  stats.Ranks(pen),
			BandwidthRank: stats.Ranks(bw),
			RankCorr:      stats.Spearman(pen, bw),
		})
	}
	return out
}
