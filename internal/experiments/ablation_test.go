package experiments

import (
	"strings"
	"testing"
)

func TestProposerAdvantage(t *testing.T) {
	res, err := lab(t).ProposerAdvantage(200, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Proposer-optimality: proposing can only help.
	if res.Advantage < -1e-9 {
		t.Errorf("proposing should not hurt: advantage %v", res.Advantage)
	}
	// The paper: the advantage is small for randomly partitioned jobs.
	if res.Advantage > 0.02 {
		t.Errorf("advantage %v should be small (<2%% penalty)", res.Advantage)
	}
	if res.Agents != 100 {
		t.Errorf("agents = %d", res.Agents)
	}
	if res.AgentsBetterOff > res.Agents {
		t.Errorf("better-off count %d exceeds agents", res.AgentsBetterOff)
	}
}

func TestPredictionToMatching(t *testing.T) {
	points, err := lab(t).PredictionToMatching([]float64{0.25, 0.75, 1.0}, 200, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	full := points[2]
	if full.Accuracy != 1 {
		t.Errorf("fully profiled accuracy = %v", full.Accuracy)
	}
	// Perfect prediction reproduces the oracle matching cost exactly.
	if full.MeanPenalty != full.OraclePenalty {
		t.Errorf("full profile penalty %v != oracle %v",
			full.MeanPenalty, full.OraclePenalty)
	}
	// The paper's claim: CF at the 25% operating point delivers the same
	// desiderata as oracular knowledge — fairness stays strong and the
	// performance cost stays small.
	quarter := points[0]
	if quarter.FairnessCorr < 0.5 {
		t.Errorf("fairness with CF at 25%% = %.2f, want strong", quarter.FairnessCorr)
	}
	if quarter.MeanPenalty > quarter.OraclePenalty+0.03 {
		t.Errorf("CF matching penalty %.4f too far above oracle %.4f",
			quarter.MeanPenalty, quarter.OraclePenalty)
	}
}

func TestThresholdStudy(t *testing.T) {
	points, err := lab(t).ThresholdStudy([]float64{0.02, 0.05, 0.10, 1.0}, 200, 13)
	if err != nil {
		t.Fatal(err)
	}
	prevMachines := 1 << 30
	for _, p := range points {
		// Looser tolerance -> fewer machines.
		if p.Machines > prevMachines {
			t.Errorf("machines rose with tolerance: %+v", points)
		}
		prevMachines = p.Machines
		// Tolerance respected in mean (each pair under tolerance).
		if p.Tolerance < 1 && p.MeanPenalty > p.Tolerance {
			t.Errorf("mean penalty %v exceeds tolerance %v", p.MeanPenalty, p.Tolerance)
		}
		// Threshold never uses fewer machines than fully loaded greedy.
		if p.Machines < p.GreedyMachines {
			t.Errorf("threshold machines %d below greedy %d", p.Machines, p.GreedyMachines)
		}
	}
	// Tight tolerance buys low penalties with many machines.
	if points[0].Machines <= points[len(points)-1].Machines {
		t.Error("tight tolerance should cost machines")
	}
}

func TestQuads(t *testing.T) {
	res, err := lab(t).Quads(80, 14)
	if err != nil {
		t.Fatal(err)
	}
	if res.QuadMachines >= res.PairMachines {
		t.Errorf("quads should consolidate machines: %d vs %d",
			res.QuadMachines, res.PairMachines)
	}
	if res.QuadPenalty <= res.PairPenalty {
		t.Errorf("4-way contention should cost more: %v vs %v",
			res.QuadPenalty, res.PairPenalty)
	}
	if res.QuadPenalty > 0.9 {
		t.Errorf("quad penalty %v implausibly high", res.QuadPenalty)
	}
}

func TestRenderAblations(t *testing.T) {
	l := lab(t)
	pa, err := l.ProposerAdvantage(100, 15)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := l.PredictionToMatching([]float64{0.25}, 100, 15)
	if err != nil {
		t.Fatal(err)
	}
	th, err := l.ThresholdStudy([]float64{0.10}, 100, 15)
	if err != nil {
		t.Fatal(err)
	}
	quad, err := l.Quads(40, 15)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderAblations(pa, pm, th, quad)
	for _, want := range []string{"proposer advantage", "prediction sparsity",
		"threshold baseline", "hierarchical consolidation"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestLoadSweep(t *testing.T) {
	points, err := lab(t).LoadSweep([]float64{100, 400, 1200}, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for i, p := range points {
		if p.Jobs == 0 || p.Epochs == 0 {
			t.Errorf("rate %v: empty run %+v", p.RatePerHour, p)
		}
		if i > 0 && p.Jobs <= points[i-1].Jobs {
			t.Errorf("higher rate should bring more jobs: %+v", points)
		}
	}
	// Saturation: the heaviest load queues deeper than the lightest.
	if points[2].MaxQueued < points[0].MaxQueued {
		t.Errorf("heavy load should queue more: %+v", points)
	}
	if out := RenderLoadSweep(points); !strings.Contains(out, "jobs/hour") {
		t.Error("render missing header")
	}
}
