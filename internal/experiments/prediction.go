package experiments

import (
	"cooper/internal/recommend"
	"cooper/internal/stats"
)

// Figure12Point is one point of the prediction-accuracy sweep: the portion
// of colocations profiled and the resulting preference accuracy (paper
// Equation 2), for a predictor capped at a given iteration count.
type Figure12Point struct {
	Fraction   float64
	Iterations int // predictor iteration cap (the paper plots 1 and 2)
	Accuracy   float64
	Trials     int
}

// Figure12 sweeps the sampled fraction of the colocation space and
// measures collaborative-filtering accuracy against the oracle penalty
// matrix, for one- and two-iteration predictors, averaging each point over
// trials random masks.
func (l *Lab) Figure12(fractions []float64, trials int, seed int64) ([]Figure12Point, error) {
	var out []Figure12Point
	for _, iters := range []int{1, 2} {
		pred := recommend.Default()
		pred.MaxIters = iters
		for _, frac := range fractions {
			var sum float64
			for k := 0; k < trials; k++ {
				r := stats.NewRand(seed + int64(k) + int64(frac*1e4))
				sparse := recommend.MaskPairs(l.Dense, frac, r)
				filled, _, err := pred.Complete(sparse)
				if err != nil {
					return nil, err
				}
				acc, err := recommend.PreferenceAccuracy(l.Dense, filled)
				if err != nil {
					return nil, err
				}
				sum += acc
			}
			out = append(out, Figure12Point{
				Fraction:   frac,
				Iterations: iters,
				Accuracy:   sum / float64(trials),
				Trials:     trials,
			})
		}
	}
	return out, nil
}

// DefaultFractions is the sweep the paper's Figure 12 x-axis covers.
func DefaultFractions() []float64 {
	return []float64{0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 0.50, 0.60, 0.75, 0.90, 1.0}
}
