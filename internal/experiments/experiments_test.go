package experiments

import (
	"math"
	"strings"
	"testing"

	"cooper/internal/policy"
)

var sharedLab *Lab

func lab(t *testing.T) *Lab {
	t.Helper()
	if sharedLab == nil {
		l, err := NewLab()
		if err != nil {
			t.Fatal(err)
		}
		sharedLab = l
	}
	return sharedLab
}

func TestTable1(t *testing.T) {
	rows := lab(t).Table1()
	if len(rows) != 20 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.MeasuredGBps-r.PaperGBps) > r.PaperGBps*0.02+0.001 {
			t.Errorf("%s: measured %.2f GB/s vs paper %.2f", r.Name,
				r.MeasuredGBps, r.PaperGBps)
		}
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "correlation") || !strings.Contains(out, "25.05") {
		t.Error("render missing catalog content")
	}
}

func TestPenaltyProfile(t *testing.T) {
	profile, err := lab(t).PenaltyProfile(policy.Greedy{}, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(profile) != 11 {
		t.Fatalf("profile apps = %d, want 11", len(profile))
	}
	for _, ap := range profile {
		if ap.Samples == 0 {
			t.Errorf("%s: no samples in a 400-agent uniform population", ap.App)
		}
		if ap.MeanPenalty < -0.05 || ap.MeanPenalty > 1 {
			t.Errorf("%s: implausible mean penalty %v", ap.App, ap.MeanPenalty)
		}
	}
}

func TestFigure7FairnessOrdering(t *testing.T) {
	// The paper's central result: stable policies (SMR, SR) link
	// contentiousness to penalty; conventional ones (GR, CO) do not.
	results, err := lab(t).Figure7(600, 2)
	if err != nil {
		t.Fatal(err)
	}
	corr := make(map[string]float64)
	for _, r := range results {
		corr[r.Policy] = r.FairnessCorr
	}
	if corr["SMR"] < 0.5 {
		t.Errorf("SMR fairness correlation %.2f, want strong positive", corr["SMR"])
	}
	if corr["SR"] < 0.5 {
		t.Errorf("SR fairness correlation %.2f, want strong positive", corr["SR"])
	}
	if corr["GR"] > corr["SMR"] {
		t.Errorf("GR (%.2f) should be less fair than SMR (%.2f)",
			corr["GR"], corr["SMR"])
	}
	if corr["CO"] > corr["SMR"] {
		t.Errorf("CO (%.2f) should be less fair than SMR (%.2f)",
			corr["CO"], corr["SMR"])
	}
	out := RenderFigure7(results)
	for _, name := range []string{"GR", "CO", "SMP", "SMR", "SR"} {
		if !strings.Contains(out, name) {
			t.Errorf("render missing policy %s", name)
		}
	}
}

func TestFigure8RanksDerivedFromFigure7(t *testing.T) {
	results, err := lab(t).Figure7(400, 3)
	if err != nil {
		t.Fatal(err)
	}
	ranks := Figure8(results)
	if len(ranks) != len(results) {
		t.Fatalf("rank results = %d", len(ranks))
	}
	for _, r := range ranks {
		if len(r.Apps) != len(r.PenaltyRanks) || len(r.Apps) != len(r.BandwidthRank) {
			t.Fatalf("%s: ragged rank data", r.Policy)
		}
		if r.RankCorr < -1 || r.RankCorr > 1 {
			t.Errorf("%s: rank corr %v", r.Policy, r.RankCorr)
		}
	}
	out := RenderFigure8(ranks)
	if !strings.Contains(out, "penalty rank") {
		t.Error("render missing rank header")
	}
}

func TestMotivation(t *testing.T) {
	m, err := lab(t).Motivation()
	if err != nil {
		t.Fatal(err)
	}
	// Stability-optimal matching must not have more blocking pairs than
	// the performance-optimal one, and the paper's story: stability
	// enhances fairness.
	if m.StabilityBlocking > m.PerformanceBlocking {
		t.Errorf("stability blocking %d > performance blocking %d",
			m.StabilityBlocking, m.PerformanceBlocking)
	}
	if m.StabilityFairness < m.PerformanceFairness {
		t.Errorf("stability fairness %.2f should be >= performance fairness %.2f",
			m.StabilityFairness, m.PerformanceFairness)
	}
	out := RenderMotivation(m)
	if !strings.Contains(out, "x264") || !strings.Contains(out, "blocking pairs") {
		t.Error("render missing content")
	}
}

func TestFigure5(t *testing.T) {
	tr, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"m1": "c2", "m2": "c3", "m3": "c1"}
	for k, v := range want {
		if tr.Pairs[k] != v {
			t.Errorf("%s -> %s, want %s", k, tr.Pairs[k], v)
		}
	}
	if tr.Rounds != 2 {
		t.Errorf("rounds = %d, want 2", tr.Rounds)
	}
	if out := RenderFigure5(tr); !strings.Contains(out, "m1 -> c2") {
		t.Error("render missing pairing")
	}
}

func TestFigure9MajorityAtLeastAsWell(t *testing.T) {
	results, err := lab(t).Figure9(3, 200, 0.005, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("results = %d, want 6 policy pairs", len(results))
	}
	for _, r := range results {
		total := r.Improved + r.Unchanged + r.Degraded
		if total != r.Populations*r.AgentsPerPop {
			t.Errorf("%s: counted %d agents, want %d", r.Label(), total,
				r.Populations*r.AgentsPerPop)
		}
		// The paper: "a large majority of agents performs at least as
		// well" when switching to stable policies.
		atLeast := float64(r.Improved+r.Unchanged) / float64(total)
		if atLeast < 0.5 {
			t.Errorf("%s: only %.0f%% at least as well", r.Label(), 100*atLeast)
		}
	}
	if out := RenderFigure9(results); !strings.Contains(out, "SR/GR") {
		t.Error("render missing labels")
	}
}

func TestFigure10StabilityOrdering(t *testing.T) {
	alphas := []float64{0, 0.01, 0.02, 0.03, 0.04, 0.05}
	results, err := lab(t).Figure10(5, 200, alphas, 5)
	if err != nil {
		t.Fatal(err)
	}
	med := make(map[string][]float64)
	for _, r := range results {
		if len(r.Boxes) != len(alphas) {
			t.Fatalf("%s: %d boxes", r.Policy, len(r.Boxes))
		}
		for i := range alphas {
			med[r.Policy] = append(med[r.Policy], r.MedianBlocking(i))
		}
		// Break-away recommendations shrink as alpha grows.
		for i := 1; i < len(alphas); i++ {
			if med[r.Policy][i] > med[r.Policy][i-1] {
				t.Errorf("%s: break-away counts rose with alpha: %v", r.Policy, med[r.Policy])
			}
		}
		// The metric is agents, so it is bounded by the population.
		for i := range alphas {
			if med[r.Policy][i] > 200 {
				t.Errorf("%s: median %v exceeds population size", r.Policy, med[r.Policy][i])
			}
		}
	}
	// SMR is the most stable policy; GR among the least.
	if med["SMR"][0] > med["GR"][0] {
		t.Errorf("SMR median blocking %v should be <= GR %v", med["SMR"][0], med["GR"][0])
	}
	if out := RenderFigure10(results); !strings.Contains(out, "alpha=2%") {
		t.Error("render missing alpha labels")
	}
}

func TestFigure11MixesAndPolicies(t *testing.T) {
	cells, err := lab(t).Figure11(300, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4*5 {
		t.Fatalf("cells = %d, want 20", len(cells))
	}
	means := make(map[string]map[string]float64)
	for _, c := range cells {
		if means[c.Mix] == nil {
			means[c.Mix] = make(map[string]float64)
		}
		means[c.Mix][c.Policy] = c.Mean
	}
	// Beta-High (contentious mix) penalties exceed Beta-Low for every
	// policy.
	for _, p := range []string{"GR", "CO", "SMP", "SMR", "SR"} {
		if means["Beta-High"][p] <= means["Beta-Low"][p] {
			t.Errorf("%s: Beta-High mean %.4f should exceed Beta-Low %.4f",
				p, means["Beta-High"][p], means["Beta-Low"][p])
		}
	}
	if out := RenderFigure11(cells); !strings.Contains(out, "Beta-High") {
		t.Error("render missing mixes")
	}
}

func TestFigure12Shape(t *testing.T) {
	points, err := lab(t).Figure12([]float64{0.15, 0.25, 0.75}, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	byIter := make(map[int]map[float64]float64)
	for _, p := range points {
		if byIter[p.Iterations] == nil {
			byIter[p.Iterations] = make(map[float64]float64)
		}
		byIter[p.Iterations][p.Fraction] = p.Accuracy
	}
	two := byIter[2]
	// Paper: error unacceptably high at low sampling, falls quickly by
	// 25%, high by 75%.
	if two[0.25] < 0.65 {
		t.Errorf("accuracy at 25%% = %.2f, want >= 0.65 (paper ~0.83)", two[0.25])
	}
	if two[0.75] < 0.90 {
		t.Errorf("accuracy at 75%% = %.2f, want >= 0.90 (paper ~0.95)", two[0.75])
	}
	if two[0.15] > two[0.25] {
		t.Errorf("accuracy should rise with sampling: %.2f -> %.2f",
			two[0.15], two[0.25])
	}
	// A second iteration helps at low sampling (fills entries iteration
	// one could not reach).
	if byIter[1][0.25] > two[0.25]+0.02 {
		t.Errorf("one iteration (%.2f) should not beat two (%.2f) at 25%%",
			byIter[1][0.25], two[0.25])
	}
	if out := RenderFigure12(points); !strings.Contains(out, "Iterations") {
		t.Error("render missing header")
	}
}

func TestFigure13ScalabilityTrend(t *testing.T) {
	// Small populations are high-variance; a dozen trials per size keeps
	// the trend assertion out of seed-luck territory.
	points, err := lab(t).Figure13([]int{10, 100, 400}, 12, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Fairness strengthens with population size.
	if points[2].FairnessCorr <= points[0].FairnessCorr {
		t.Errorf("fairness should strengthen with scale: %v", points)
	}
	if out := RenderFigure13(points); !strings.Contains(out, "Fairness corr") {
		t.Error("render missing header")
	}
}

func TestFigure14(t *testing.T) {
	r, err := Figure14()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, 2.0, 2.5}
	for i := range want {
		if math.Abs(r.Shapley[i]-want[i]) > 1e-12 {
			t.Errorf("Shapley[%d] = %v, want %v", i, r.Shapley[i], want[i])
		}
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 permutations", len(r.Rows))
	}
	// The {A, C, B} row: MA=0, MC=4, MB=2.
	for _, row := range r.Rows {
		if row.Order[0] == "A" && row.Order[1] == "C" {
			if row.Marginals[0] != 0 || row.Marginals[2] != 4 || row.Marginals[1] != 2 {
				t.Errorf("{A,C,B} marginals = %v, want [0 2 4]", row.Marginals)
			}
		}
	}
	if out := RenderFigure14(r); !strings.Contains(out, "phi = E[M]") {
		t.Error("render missing Shapley row")
	}
}

func TestPerformanceWithinFivePercent(t *testing.T) {
	// Abstract claim: "performs within 5% of prior heuristics".
	l := lab(t)
	meanPenalty := func(p policy.Policy) float64 {
		profile, err := l.PenaltyProfile(p, 400, 9)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		var n int
		for _, ap := range profile {
			sum += ap.MeanPenalty * float64(ap.Samples)
			n += ap.Samples
		}
		return sum / float64(n)
	}
	gr := meanPenalty(policy.Greedy{})
	for _, p := range []policy.Policy{
		policy.StableMarriageRandom{},
		policy.StableRoommate{},
		policy.StableMarriagePartition{},
	} {
		if got := meanPenalty(p); got > gr+0.05 {
			t.Errorf("%s mean penalty %.4f not within 5%% of GR %.4f",
				p.Name(), got, gr)
		}
	}
}
