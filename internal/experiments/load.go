package experiments

import (
	"fmt"

	"cooper/internal/coordinator"
	"cooper/internal/core"
	"cooper/internal/policy"
	"cooper/internal/stats"
)

// LoadPoint is one arrival rate in the continuous-operation study: how
// queueing delay, epoch utilization and penalties respond as offered load
// approaches the cluster's capacity. Not a paper figure — it exercises
// the paper's §III-A operating regime ("if the system is heavily loaded,
// jobs queue for scheduling").
type LoadPoint struct {
	RatePerHour float64
	Jobs        int
	Epochs      int
	MeanWaitS   float64
	MaxQueued   int
	MeanPenalty float64
}

// LoadSweep drives the coordinator over increasing Poisson arrival rates
// on a fixed cluster and scheduling period.
func (l *Lab) LoadSweep(ratesPerHour []float64, hours float64, seed int64) ([]LoadPoint, error) {
	f, err := core.New(core.Options{
		Machine: l.Machine,
		Policy:  policy.StableMarriageRandom{},
		Oracle:  true,
		Seed:    seed,
	})
	if err != nil {
		return nil, err
	}
	var out []LoadPoint
	for _, rate := range ratesPerHour {
		arrivals, err := coordinator.PoissonArrivals(
			rate/3600, hours*3600, l.Catalog, stats.Uniform{}, stats.NewRand(seed+int64(rate)))
		if err != nil {
			return nil, err
		}
		driver := &coordinator.Driver{Framework: f, PeriodS: 300, MaxBatch: 40}
		_, summary, err := driver.Run(arrivals)
		if err != nil {
			return nil, err
		}
		out = append(out, LoadPoint{
			RatePerHour: rate,
			Jobs:        summary.Jobs,
			Epochs:      summary.Epochs,
			MeanWaitS:   summary.MeanWaitS,
			MaxQueued:   summary.MaxQueued,
			MeanPenalty: summary.MeanPenalty,
		})
	}
	return out, nil
}

// RenderLoadSweep formats the study.
func RenderLoadSweep(points []LoadPoint) string {
	out := "Load sweep: continuous operation under rising arrival rates (SMR, 300s epochs)\n"
	out += fmt.Sprintf("%-12s %-7s %-8s %-11s %-11s %-10s\n",
		"jobs/hour", "jobs", "epochs", "mean wait", "peak queue", "penalty")
	for _, p := range points {
		out += fmt.Sprintf("%-12.0f %-7d %-8d %-11s %-11d %-10.4f\n",
			p.RatePerHour, p.Jobs, p.Epochs,
			fmt.Sprintf("%.0fs", p.MeanWaitS), p.MaxQueued, p.MeanPenalty)
	}
	return out
}
