package experiments

import (
	"strings"
	"testing"
)

func TestHeterogeneity(t *testing.T) {
	res, err := lab(t).Heterogeneity(100, 25)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs != 50 {
		t.Fatalf("pairs = %d", res.Pairs)
	}
	// Weak nodes amplify contention.
	if res.SmallPenaltyInflation <= 1 {
		t.Errorf("small-node inflation %.2f should exceed 1", res.SmallPenaltyInflation)
	}
	// Mixing in weak machines costs performance versus the homogeneous
	// setting.
	if res.BlindMean <= res.HomogeneousMean {
		t.Errorf("blind placement %.4f should cost more than all-big %.4f",
			res.BlindMean, res.HomogeneousMean)
	}
	// Demand-aware placement recovers part of the loss.
	if res.AwareMean > res.BlindMean {
		t.Errorf("aware placement %.4f should not exceed blind %.4f",
			res.AwareMean, res.BlindMean)
	}
}

func TestRenderHeterogeneity(t *testing.T) {
	res, err := lab(t).Heterogeneity(60, 26)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderHeterogeneity(res)
	if !strings.Contains(out, "Heterogeneity") || !strings.Contains(out, "type-aware") {
		t.Errorf("render incomplete:\n%s", out)
	}
}

func TestSmallCMPValid(t *testing.T) {
	if err := SmallCMP().Validate(); err != nil {
		t.Fatal(err)
	}
}
