package experiments

import (
	"strings"
	"testing"
)

func TestShapleyAttributionStudy(t *testing.T) {
	res, err := lab(t).ShapleyAttributionStudy(400, 10, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phi) != 20 || len(res.Jobs) != 20 {
		t.Fatalf("sizes: %d phi, %d jobs", len(res.Phi), len(res.Jobs))
	}
	// Theory-side: fair shares must track contentiousness strongly.
	if res.BandwidthCorr < 0.7 {
		t.Errorf("Spearman(phi, bandwidth) = %.2f, want strong", res.BandwidthCorr)
	}
	// The abstract's claim, quantified: the stable policies attribute
	// penalties far closer to Shapley-fair shares than CO does.
	if res.PolicyCorr["SMR"] < 0.7 {
		t.Errorf("SMR Shapley correlation %.2f, want strong", res.PolicyCorr["SMR"])
	}
	if res.PolicyCorr["SR"] < 0.7 {
		t.Errorf("SR Shapley correlation %.2f, want strong", res.PolicyCorr["SR"])
	}
	if res.PolicyCorr["CO"] > res.PolicyCorr["SMR"] {
		t.Errorf("CO (%.2f) should attribute less fairly than SMR (%.2f)",
			res.PolicyCorr["CO"], res.PolicyCorr["SMR"])
	}
	// Meek jobs can carry slightly *negative* shares: adding swaptions to
	// a contentious coalition lets a monster pair with it instead of with
	// another monster, reducing total penalty — Shapley compensates the
	// subsidy. Contentious jobs carry large positive shares.
	idx := func(name string) int {
		for i, j := range res.Jobs {
			if j == name {
				return i
			}
		}
		t.Fatalf("job %s missing", name)
		return -1
	}
	if res.Phi[idx("correlation")] < 0.05 {
		t.Errorf("correlation's share %v should be large and positive",
			res.Phi[idx("correlation")])
	}
	if res.Phi[idx("swapt")] > res.Phi[idx("correlation")] {
		t.Error("swaptions' share should be far below correlation's")
	}
	for i, phi := range res.Phi {
		if phi < -0.1 {
			t.Errorf("%s: share %v implausibly negative", res.Jobs[i], phi)
		}
	}
}

func TestShapleyAttributionValidation(t *testing.T) {
	if _, err := lab(t).ShapleyAttributionStudy(100, 0, 1); err == nil {
		t.Error("zero agents per job accepted")
	}
}

func TestRenderShapley(t *testing.T) {
	res, err := lab(t).ShapleyAttributionStudy(100, 4, 22)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderShapley(res)
	for _, want := range []string{"fair shares", "Shapley share", "SMR"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
