package experiments

import (
	"fmt"
	"sort"

	"cooper/internal/arch"
	"cooper/internal/matching"
	"cooper/internal/policy"
	"cooper/internal/profiler"
	"cooper/internal/recommend"
	"cooper/internal/stats"
)

// ProposerAdvantageResult quantifies the paper's §III-C observation that
// proposing agents do better than receiving ones, and that the advantage
// is small under random partitions.
type ProposerAdvantageResult struct {
	// MeanAsProposer / MeanAsReceiver are set-1 agents' mean penalties
	// when their side proposes versus receives.
	MeanAsProposer float64
	MeanAsReceiver float64
	// Advantage is receiver minus proposer mean (positive = proposing
	// helps).
	Advantage float64
	// AgentsBetterOff counts set-1 agents strictly better off proposing.
	AgentsBetterOff int
	Agents          int
}

// ProposerAdvantage fixes one random partition of a uniform population
// and runs stable marriage with each side proposing, comparing set-1
// agents' outcomes across the two role assignments.
func (l *Lab) ProposerAdvantage(n int, seed int64) (*ProposerAdvantageResult, error) {
	pop := l.uniformPopulation(n, seed)
	d, err := profiler.ExpandToAgents(l.Dense, l.Catalog, pop)
	if err != nil {
		return nil, err
	}
	r := stats.NewRand(seed + 1)
	order := r.Perm(len(pop.Jobs))
	half := len(order) / 2
	setA := order[:half]
	setB := order[half : 2*half]

	prefs := func(agents, others []int) [][]int {
		lists := make([][]int, len(agents))
		for a, i := range agents {
			list := make([]int, len(others))
			for b := range others {
				list[b] = b
			}
			sort.SliceStable(list, func(x, y int) bool {
				jx, jy := others[list[x]], others[list[y]]
				if d[i][jx] != d[i][jy] {
					return d[i][jx] < d[i][jy]
				}
				return jx < jy
			})
			lists[a] = list
		}
		return lists
	}

	// Round 1: set A proposes.
	aMatch, err := matching.StableMarriage(prefs(setA, setB), prefs(setB, setA))
	if err != nil {
		return nil, err
	}
	// Round 2: set B proposes; invert to find set A's partners.
	bMatch, err := matching.StableMarriage(prefs(setB, setA), prefs(setA, setB))
	if err != nil {
		return nil, err
	}
	partnerWhenReceiving := make([]int, half) // index in setB for each setA agent
	for b, a := range bMatch {
		partnerWhenReceiving[a] = b
	}

	res := &ProposerAdvantageResult{Agents: half}
	for a := range setA {
		i := setA[a]
		asProp := d[i][setB[aMatch[a]]]
		asRecv := d[i][setB[partnerWhenReceiving[a]]]
		res.MeanAsProposer += asProp
		res.MeanAsReceiver += asRecv
		if asProp < asRecv {
			res.AgentsBetterOff++
		}
	}
	res.MeanAsProposer /= float64(half)
	res.MeanAsReceiver /= float64(half)
	res.Advantage = res.MeanAsReceiver - res.MeanAsProposer
	return res, nil
}

// PredictionMatchingPoint links profiling sparsity to matching quality:
// the paper claims stable policies deliver the same desiderata with
// collaborative filtering as with oracular knowledge.
type PredictionMatchingPoint struct {
	Fraction float64
	Accuracy float64 // Equation 2 on the completed job matrix
	// MeanPenalty is the population's true mean penalty when SMR matches
	// on predicted penalties.
	MeanPenalty float64
	// OraclePenalty is the same population matched on true penalties.
	OraclePenalty float64
	// FairnessCorr is the bandwidth-penalty Spearman under predicted
	// matching, evaluated with true penalties.
	FairnessCorr float64
	// BlockingAgents counts agents in true-preference blocking pairs
	// under the predicted matching (alpha = 2%).
	BlockingAgents int
}

// PredictionToMatching sweeps profiling sparsity and measures what the
// prediction error costs the matching.
func (l *Lab) PredictionToMatching(fractions []float64, n int, seed int64) ([]PredictionMatchingPoint, error) {
	pop := l.uniformPopulation(n, seed)
	trueD, err := profiler.ExpandToAgents(l.Dense, l.Catalog, pop)
	if err != nil {
		return nil, err
	}
	bw := make([]float64, len(pop.Jobs))
	for i, j := range pop.Jobs {
		bw[i] = j.BandwidthGBps
	}
	smr := policy.StableMarriageRandom{}

	evalTrue := func(match matching.Matching) (float64, float64, int) {
		pens := agentPenalties(match, trueD)
		pairs := matching.AlphaBlockingPairs(match, trueD, 0.02)
		agents := make(map[int]bool)
		for _, bp := range pairs {
			agents[bp[0]] = true
			agents[bp[1]] = true
		}
		return stats.Mean(pens), stats.Spearman(bw, pens), len(agents)
	}

	oracleMatch, err := smr.Assign(trueD, policy.Context{BandwidthGBps: bw, Rand: stats.NewRand(seed + 2)})
	if err != nil {
		return nil, err
	}
	oraclePenalty, _, _ := evalTrue(oracleMatch)

	var out []PredictionMatchingPoint
	for _, frac := range fractions {
		sparse := recommend.MaskPairs(l.Dense, frac, stats.NewRand(seed+int64(frac*1e4)))
		filled, _, err := recommend.Default().Complete(sparse)
		if err != nil {
			return nil, err
		}
		acc, err := recommend.PreferenceAccuracy(l.Dense, filled)
		if err != nil {
			return nil, err
		}
		predD, err := profiler.ExpandToAgents(filled, l.Catalog, pop)
		if err != nil {
			return nil, err
		}
		match, err := smr.Assign(predD, policy.Context{BandwidthGBps: bw, Rand: stats.NewRand(seed + 2)})
		if err != nil {
			return nil, err
		}
		mean, fair, blocking := evalTrue(match)
		out = append(out, PredictionMatchingPoint{
			Fraction:       frac,
			Accuracy:       acc,
			MeanPenalty:    mean,
			OraclePenalty:  oraclePenalty,
			FairnessCorr:   fair,
			BlockingAgents: blocking,
		})
	}
	return out, nil
}

// ThresholdPoint compares the threshold baseline against greedy at one
// tolerance: the machines it consumes and the penalties it allows.
type ThresholdPoint struct {
	Tolerance   float64
	Machines    int     // machines the threshold policy needs
	MeanPenalty float64 // mean penalty across agents
	// GreedyMachines/GreedyPenalty are the fixed-capacity greedy
	// reference (n/2 machines).
	GreedyMachines int
	GreedyPenalty  float64
}

// ThresholdStudy reproduces the related-work argument: threshold schemes
// cap penalties by spending machines, and with no machines in reserve
// greedy performs at least as well.
func (l *Lab) ThresholdStudy(tolerances []float64, n int, seed int64) ([]ThresholdPoint, error) {
	pop := l.uniformPopulation(n, seed)
	d, err := profiler.ExpandToAgents(l.Dense, l.Catalog, pop)
	if err != nil {
		return nil, err
	}
	bw := make([]float64, len(pop.Jobs))
	for i, j := range pop.Jobs {
		bw[i] = j.BandwidthGBps
	}
	grMatch, err := (policy.Greedy{}).Assign(d, policy.Context{BandwidthGBps: bw})
	if err != nil {
		return nil, err
	}
	grPens := agentPenalties(grMatch, d)

	var out []ThresholdPoint
	for _, tol := range tolerances {
		match, err := (policy.Threshold{Tolerance: tol}).Assign(d, policy.Context{})
		if err != nil {
			return nil, err
		}
		machines := 0
		for i, j := range match {
			if j == matching.Unmatched || i < j {
				machines++
			}
		}
		out = append(out, ThresholdPoint{
			Tolerance:      tol,
			Machines:       machines,
			MeanPenalty:    stats.Mean(agentPenalties(match, d)),
			GreedyMachines: (n + 1) / 2,
			GreedyPenalty:  stats.Mean(grPens),
		})
	}
	return out, nil
}

// QuadConsolidation evaluates the §VIII hierarchical extension: pack four
// co-runners per CMP instead of two, halving machines at the cost of
// deeper contention.
type QuadConsolidation struct {
	Agents       int
	PairMachines int
	QuadMachines int
	PairPenalty  float64 // mean true penalty under 2-way SR
	QuadPenalty  float64 // mean true penalty under hierarchical 4-way
	QuadFairness float64 // bandwidth-penalty correlation in quads
}

// Quads runs the hierarchical 4-way experiment on a uniform population.
func (l *Lab) Quads(n int, seed int64) (*QuadConsolidation, error) {
	pop := l.uniformPopulation(n, seed)
	d, err := profiler.ExpandToAgents(l.Dense, l.Catalog, pop)
	if err != nil {
		return nil, err
	}
	match, _, err := matching.AdaptedRoommates(d)
	if err != nil {
		return nil, err
	}
	pairPens := agentPenalties(match, d)

	groups, err := matching.HierarchicalQuads(d, nil)
	if err != nil {
		return nil, err
	}
	// Evaluate quads with the architecture model's true n-way contention.
	quadPens := make([]float64, n)
	bw := make([]float64, n)
	for i, j := range pop.Jobs {
		bw[i] = j.BandwidthGBps
	}
	machines := 0
	for _, g := range groups {
		machines++
		if len(g) < 2 {
			continue
		}
		tasks := make([]arch.TaskModel, len(g))
		for k, i := range g {
			tasks[k] = pop.Jobs[i].Model
		}
		perfs := l.Machine.Colocate(tasks)
		for k, i := range g {
			// The standalone baseline keeps the pair convention (half the
			// CMP's threads), so quad penalties include the thread-share
			// loss — the honest cost of packing four per CMP.
			solo := l.Machine.Solo(pop.Jobs[i].Model)
			quadPens[i] = arch.Disutility(solo, perfs[k])
		}
	}
	return &QuadConsolidation{
		Agents:       n,
		PairMachines: (n + 1) / 2,
		QuadMachines: machines,
		PairPenalty:  stats.Mean(pairPens),
		QuadPenalty:  stats.Mean(quadPens),
		QuadFairness: stats.Spearman(bw, quadPens),
	}, nil
}

// RenderAblations formats the four ablation studies.
func RenderAblations(pa *ProposerAdvantageResult, pm []PredictionMatchingPoint,
	th []ThresholdPoint, quad *QuadConsolidation) string {
	out := fmt.Sprintf(`Ablation: proposer advantage (random partition, %d agents/side)
  mean penalty proposing %.4f vs receiving %.4f (advantage %.4f)
  %d/%d agents strictly better off proposing — small, as the paper observes

`, pa.Agents, pa.MeanAsProposer, pa.MeanAsReceiver, pa.Advantage,
		pa.AgentsBetterOff, pa.Agents)

	out += "Ablation: prediction sparsity -> matching quality (SMR)\n"
	out += fmt.Sprintf("  %-9s %-9s %-12s %-12s %-9s %-9s\n",
		"sampled", "accuracy", "mean pen", "oracle pen", "fairness", "blocking")
	for _, p := range pm {
		out += fmt.Sprintf("  %-9.0f %-9.2f %-12.4f %-12.4f %-9.2f %-9d\n",
			p.Fraction*100, p.Accuracy, p.MeanPenalty, p.OraclePenalty,
			p.FairnessCorr, p.BlockingAgents)
	}

	out += "\nAblation: threshold baseline vs greedy (fixed machines)\n"
	out += fmt.Sprintf("  %-10s %-9s %-12s %-9s %-12s\n",
		"tolerance", "machines", "mean pen", "GR mach", "GR pen")
	for _, p := range th {
		out += fmt.Sprintf("  %-10.2f %-9d %-12.4f %-9d %-12.4f\n",
			p.Tolerance, p.Machines, p.MeanPenalty, p.GreedyMachines, p.GreedyPenalty)
	}

	out += fmt.Sprintf(`
Ablation: 4-way hierarchical consolidation (%d agents)
  2-way: %d machines, mean penalty %.4f
  4-way: %d machines, mean penalty %.4f (fairness corr %.2f)
  consolidation halves machines; penalties absorb the extra contention
`, quad.Agents, quad.PairMachines, quad.PairPenalty,
		quad.QuadMachines, quad.QuadPenalty, quad.QuadFairness)
	return out
}
