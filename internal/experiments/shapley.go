package experiments

import (
	"fmt"

	"cooper/internal/game"
	"cooper/internal/matching"
	"cooper/internal/policy"
	"cooper/internal/profiler"
	"cooper/internal/stats"
	"cooper/internal/workload"
)

// ShapleyAttribution connects §II's theory to the evaluation: the Shapley
// value prescribes each job's fair share of colocation penalties; a
// policy attributes costs fairly when the penalties it hands out
// correlate with those shares. The abstract's claim — "users' performance
// penalties are strongly correlated to their contributions to contention,
// which is fair according to cooperative game theory" — becomes a number
// per policy.
type ShapleyAttribution struct {
	Jobs []string
	// Phi is each job's Shapley share of the grand coalition's penalty,
	// estimated by Monte Carlo over orderings.
	Phi []float64
	// BandwidthCorr is Spearman(phi, bandwidth demand): the theory-side
	// sanity check that fair shares track contentiousness.
	BandwidthCorr float64
	// PolicyCorr maps each policy to Spearman(per-job penalty, phi) on a
	// balanced population.
	PolicyCorr map[string]float64
}

// coalitionValue builds the job-level colocation game: a coalition's
// penalty is the total disutility when its jobs are paired among
// themselves greedily (each job takes the cheapest remaining partner; an
// odd member runs alone). Greedy pairing keeps v(S) cheap enough to
// evaluate inside Monte Carlo Shapley while preserving the game's
// structure: coalitions of meek jobs cost little, coalitions of
// contentious jobs cost a lot.
func (l *Lab) coalitionValue() game.CoalitionValue {
	return func(coalition []int) float64 {
		if len(coalition) < 2 {
			return 0
		}
		sub := make([][]float64, len(coalition))
		for a, i := range coalition {
			sub[a] = make([]float64, len(coalition))
			for b, j := range coalition {
				if a != b {
					sub[a][b] = l.Dense[i][j]
				}
			}
		}
		match := make(matching.Matching, len(coalition))
		for i := range match {
			match[i] = matching.Unmatched
		}
		agents := make([]int, len(coalition))
		for i := range agents {
			agents[i] = i
		}
		matching.GreedyPair(agents, sub, match)
		var total float64
		for a, b := range match {
			if b != matching.Unmatched {
				total += sub[a][b]
			}
		}
		return total
	}
}

// ShapleyAttributionStudy estimates Shapley-fair shares for the 20
// catalog jobs and measures how well each policy's actual penalties track
// them on a balanced population of agentsPerJob agents per job.
func (l *Lab) ShapleyAttributionStudy(samples, agentsPerJob int, seed int64) (*ShapleyAttribution, error) {
	if agentsPerJob < 1 {
		return nil, fmt.Errorf("experiments: agentsPerJob must be positive")
	}
	n := len(l.Catalog)
	phi, err := game.SampledShapley(n, l.coalitionValue(), samples, stats.NewRand(seed))
	if err != nil {
		return nil, err
	}

	res := &ShapleyAttribution{
		Jobs:       make([]string, n),
		Phi:        phi,
		PolicyCorr: make(map[string]float64),
	}
	bw := make([]float64, n)
	for i, j := range l.Catalog {
		res.Jobs[i] = j.Name
		bw[i] = j.BandwidthGBps
	}
	res.BandwidthCorr = stats.Spearman(phi, bw)

	// Balanced population: every job equally represented, so per-job mean
	// penalties are directly comparable to the per-job shares.
	pop := workload.Population{Mix: "balanced"}
	for _, j := range l.Catalog {
		for k := 0; k < agentsPerJob; k++ {
			pop.Jobs = append(pop.Jobs, j)
		}
	}
	d, err := profiler.ExpandToAgents(l.Dense, l.Catalog, pop)
	if err != nil {
		return nil, err
	}
	agentBW := make([]float64, len(pop.Jobs))
	for i, j := range pop.Jobs {
		agentBW[i] = j.BandwidthGBps
	}
	idx := l.jobIndex()
	for _, p := range policy.All() {
		match, err := p.Assign(d, policy.Context{
			BandwidthGBps: agentBW,
			Rand:          stats.NewRand(seed + 1),
		})
		if err != nil {
			return nil, err
		}
		pens := agentPenalties(match, d)
		perJob := make([]float64, n)
		counts := make([]int, n)
		for i, j := range pop.Jobs {
			perJob[idx[j.Name]] += pens[i]
			counts[idx[j.Name]]++
		}
		for i := range perJob {
			if counts[i] > 0 {
				perJob[i] /= float64(counts[i])
			}
		}
		res.PolicyCorr[p.Name()] = stats.Spearman(perJob, phi)
	}
	return res, nil
}

// RenderShapley formats the attribution study.
func RenderShapley(s *ShapleyAttribution) string {
	out := "Shapley attribution: policy penalties vs cooperative-game fair shares\n"
	out += fmt.Sprintf("  fair shares track contentiousness: Spearman(phi, GB/s) = %.2f\n\n",
		s.BandwidthCorr)
	out += "  per-job Shapley share of coalition penalty:\n"
	for i, name := range s.Jobs {
		out += fmt.Sprintf("    %-12s %.4f\n", name, s.Phi[i])
	}
	out += "\n  Spearman(policy's per-job penalty, Shapley share):\n"
	for _, p := range []string{"GR", "CO", "SMP", "SMR", "SR"} {
		out += fmt.Sprintf("    %-4s %.2f\n", p, s.PolicyCorr[p])
	}
	return out
}
