package experiments

import (
	"strings"
	"testing"
)

func TestManipulation(t *testing.T) {
	res, err := lab(t).Manipulation(100, 5, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("strategies = %d", len(res.Points))
	}
	// Lying can only shuffle this agent among co-runners it claims to
	// want; any gain must be small relative to the penalty scale. (With
	// deferred acceptance the proposer side is strategy-proof; the
	// receiver side's manipulation margin is what this measures.)
	if res.BestGain > 0.10 {
		t.Errorf("a lie gained %.4f — implausibly large for this game", res.BestGain)
	}
	for _, p := range res.Points {
		if p.TruePenalty < 0 || p.TruePenalty > 1 {
			t.Errorf("%s: penalty %v out of range", p.Strategy, p.TruePenalty)
		}
	}
}

func TestManipulationValidation(t *testing.T) {
	if _, err := lab(t).Manipulation(10, 99, 1); err == nil {
		t.Error("out-of-range agent accepted")
	}
}

func TestChurn(t *testing.T) {
	points, err := lab(t).Churn(100, 5, 0.2, 18)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("epochs = %d", len(points))
	}
	if points[0].Replaced != 0 {
		t.Error("first epoch should replace nobody")
	}
	for i, p := range points {
		if i > 0 && (p.Replaced < 5 || p.Replaced > 45) {
			t.Errorf("epoch %d replaced %d of 100 at 20%% churn", i, p.Replaced)
		}
		if p.PairsTotal != 50 {
			t.Errorf("epoch %d has %d pairs", i, p.PairsTotal)
		}
		if p.MeanPenalty <= 0 {
			t.Errorf("epoch %d penalty %v", i, p.MeanPenalty)
		}
		if p.BlockingPct < 0 || p.BlockingPct > 100 {
			t.Errorf("epoch %d blocking %v%%", i, p.BlockingPct)
		}
	}
}

func TestChurnZeroKeepsMatchingShape(t *testing.T) {
	// Zero churn with a fresh random partition each epoch: the population
	// is constant so pair survival is driven purely by the partition
	// draw; the penalty stays flat.
	points, err := lab(t).Churn(100, 3, 0, 19)
	if err != nil {
		t.Fatal(err)
	}
	base := points[0].MeanPenalty
	for _, p := range points[1:] {
		if p.Replaced != 0 {
			t.Error("zero churn replaced agents")
		}
		diff := p.MeanPenalty - base
		if diff < -0.02 || diff > 0.02 {
			t.Errorf("penalty drifted from %.4f to %.4f without churn", base, p.MeanPenalty)
		}
	}
}

func TestChurnValidation(t *testing.T) {
	if _, err := lab(t).Churn(10, 2, 1.5, 1); err == nil {
		t.Error("churn fraction above 1 accepted")
	}
}

func TestRenderStrategic(t *testing.T) {
	l := lab(t)
	m, err := l.Manipulation(60, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	churn, err := l.Churn(60, 3, 0.1, 20)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderStrategic(m, churn)
	for _, want := range []string{"misreporting", "truthful penalty", "Churn", "invert"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
