package experiments

import (
	"fmt"
	"sort"

	"cooper/internal/arch"
	"cooper/internal/matching"
	"cooper/internal/policy"
	"cooper/internal/profiler"
	"cooper/internal/stats"
)

// SmallCMP is a weaker machine class for the heterogeneity study: fewer
// cores, a smaller LLC and less memory bandwidth than the evaluation
// server — the kind of older node a real private cluster accumulates.
func SmallCMP() arch.CMP {
	m := arch.DefaultCMP()
	m.Name = "xeon-small"
	m.Cores = 8
	m.Threads = 16
	m.FreqHz = 2.1e9
	m.LLCBytes = 15 << 20
	m.MemBWBytes = 34e9
	return m
}

// HeteroResult contrasts heterogeneity-blind and -aware placement of the
// same stable matching onto a half-big, half-small cluster. The paper
// assumes homogeneous processors (§III-A); this study measures what that
// assumption is worth and how much a placement heuristic recovers.
type HeteroResult struct {
	Pairs         int
	BigMachines   int
	SmallMachines int
	// HomogeneousMean is the mean penalty if every pair ran on a big
	// machine (the paper's setting).
	HomogeneousMean float64
	// BlindMean is the mean penalty when pairs are placed on machine
	// types arbitrarily (alternating).
	BlindMean float64
	// AwareMean is the mean penalty when the pairs benefiting most from
	// strong hardware get the big machines.
	AwareMean float64
	// SmallPenaltyInflation is the mean penalty ratio small/big across
	// pairs — how much harder contention bites on the weak nodes.
	SmallPenaltyInflation float64
}

// Heterogeneity runs the study on a uniform population matched by SMR
// (using big-machine penalties, as a heterogeneity-unaware coordinator
// would).
func (l *Lab) Heterogeneity(n int, seed int64) (*HeteroResult, error) {
	pop := l.uniformPopulation(n, seed)
	d, err := profiler.ExpandToAgents(l.Dense, l.Catalog, pop)
	if err != nil {
		return nil, err
	}
	bw := make([]float64, n)
	for i, j := range pop.Jobs {
		bw[i] = j.BandwidthGBps
	}
	match, err := (policy.StableMarriageRandom{}).Assign(d, policy.Context{
		BandwidthGBps: bw,
		Rand:          stats.NewRand(seed + 3),
	})
	if err != nil {
		return nil, err
	}

	big := l.Machine
	small := SmallCMP()
	type pair struct {
		a, b    int
		onBig   float64 // mean pair penalty vs the homogeneous baseline
		onSmall float64
	}
	var pairs []pair
	// Across machine classes the meaningful penalty is throughput lost
	// versus the homogeneous baseline (solo on a big machine): relative
	// disutility per machine would hide the weak nodes' slowness, since
	// their solo baselines are already degraded.
	penaltyOn := func(m arch.CMP, a, b int) float64 {
		soloA := big.Solo(pop.Jobs[a].Model)
		soloB := big.Solo(pop.Jobs[b].Model)
		pa, pb := m.Pair(pop.Jobs[a].Model, pop.Jobs[b].Model)
		return (arch.Disutility(soloA, pa) + arch.Disutility(soloB, pb)) / 2
	}
	for i, j := range match {
		if j == matching.Unmatched || i > j {
			continue
		}
		pairs = append(pairs, pair{
			a: i, b: j,
			onBig:   penaltyOn(big, i, j),
			onSmall: penaltyOn(small, i, j),
		})
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("experiments: no pairs to place")
	}

	res := &HeteroResult{
		Pairs:         len(pairs),
		BigMachines:   (len(pairs) + 1) / 2,
		SmallMachines: len(pairs) / 2,
	}
	var homSum, inflSum float64
	inflCount := 0
	for _, p := range pairs {
		homSum += p.onBig
		if p.onBig > 0.001 {
			inflSum += p.onSmall / p.onBig
			inflCount++
		}
	}
	res.HomogeneousMean = homSum / float64(len(pairs))
	if inflCount > 0 {
		res.SmallPenaltyInflation = inflSum / float64(inflCount)
	}

	// Blind placement: alternate machine types in matching order.
	var blindSum float64
	for k, p := range pairs {
		if k%2 == 0 {
			blindSum += p.onBig
		} else {
			blindSum += p.onSmall
		}
	}
	res.BlindMean = blindSum / float64(len(pairs))

	// Aware placement: a coordinator with per-type profiles gives the big
	// machines to the pairs that benefit most from them (largest
	// small-vs-big penalty gap). Raw demand is a poor proxy — the
	// hungriest pairs saturate even the big machines, so the marginal
	// benefit peaks for the middle of the distribution.
	ordered := append([]pair(nil), pairs...)
	sort.Slice(ordered, func(x, y int) bool {
		return ordered[x].onSmall-ordered[x].onBig > ordered[y].onSmall-ordered[y].onBig
	})
	var awareSum float64
	for k, p := range ordered {
		if k < res.BigMachines {
			awareSum += p.onBig
		} else {
			awareSum += p.onSmall
		}
	}
	res.AwareMean = awareSum / float64(len(pairs))
	return res, nil
}

// RenderHeterogeneity formats the study.
func RenderHeterogeneity(r *HeteroResult) string {
	return fmt.Sprintf(`Heterogeneity: SMR pairs placed on a half-big, half-small cluster
  pairs %d on %d big + %d small machines
  mean pair penalty, all-big (paper's setting): %.4f
  heterogeneity-blind placement:                %.4f
  type-aware placement (best-benefit -> big):   %.4f
  contention bites %.1fx harder on the small nodes
`, r.Pairs, r.BigMachines, r.SmallMachines,
		r.HomogeneousMean, r.BlindMean, r.AwareMean, r.SmallPenaltyInflation)
}
