package experiments

import (
	"strings"
	"testing"
)

func TestEfficiencyStudy(t *testing.T) {
	rows, err := lab(t).EfficiencyStudy(100, 23)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byPolicy := map[string]EfficiencyRow{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
		// The paper's motivation: colocation saves substantial energy per
		// job versus one job per machine, for every policy.
		if r.SavingsPct < 10 {
			t.Errorf("%s: savings %.1f%%, want substantial", r.Policy, r.SavingsPct)
		}
		if r.EnergyPerJobJ <= 0 {
			t.Errorf("%s: energy %v", r.Policy, r.EnergyPerJobJ)
		}
		if r.SharingIncentivePct < 0 || r.SharingIncentivePct > 100 {
			t.Errorf("%s: SI %v", r.Policy, r.SharingIncentivePct)
		}
	}
	// Stable policies satisfy sharing incentives for a clear majority.
	if byPolicy["SMR"].SharingIncentivePct < 60 {
		t.Errorf("SMR sharing incentive %.0f%%, want majority",
			byPolicy["SMR"].SharingIncentivePct)
	}
}

func TestRenderEfficiency(t *testing.T) {
	rows, err := lab(t).EfficiencyStudy(60, 24)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderEfficiency(rows)
	for _, want := range []string{"energy/job", "sharing incentive", "SMR"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
