package experiments

import (
	"cooper/internal/policy"
	"cooper/internal/stats"
	"cooper/internal/workload"
)

// Mixes returns the paper's four workload-mix densities in Figure 11
// order.
func Mixes() []stats.Sampler {
	return []stats.Sampler{
		stats.Uniform{},
		stats.BetaLow(),
		stats.Gaussian{Mu: 0.5, Sigma: 0.15},
		stats.BetaHigh(),
	}
}

// Figure11Cell is one boxplot of Figure 11: the distribution of per-agent
// penalties under one policy and one workload mix.
type Figure11Cell struct {
	Mix       string
	Policy    string
	Penalties []float64
	Box       stats.Boxplot
	Mean      float64
}

// Figure11 measures penalty distributions for every mix and policy over a
// population of n agents per cell. The paper's Figure 11 whiskers extend
// 3x the IQR, so the boxplots here use that multiplier.
func (l *Lab) Figure11(n int, seed int64) ([]Figure11Cell, error) {
	var out []Figure11Cell
	for mi, mix := range Mixes() {
		popSeed := seed + int64(mi)*101
		pop := workload.Sample(n, l.Catalog, mix, stats.NewRand(popSeed))
		for pi, p := range policy.All() {
			match, d, err := l.assign(p, pop, stats.NewRand(popSeed+int64(pi)+500))
			if err != nil {
				return nil, err
			}
			pens := agentPenalties(match, d)
			out = append(out, Figure11Cell{
				Mix:       mix.Name(),
				Policy:    p.Name(),
				Penalties: pens,
				Box:       stats.NewBoxplotWhisker(pens, 3),
				Mean:      stats.Mean(pens),
			})
		}
	}
	return out, nil
}

// Figure13Point is one population size of the scalability analysis.
type Figure13Point struct {
	Population int
	// FairnessCorr is the mean Spearman correlation between agents' job
	// bandwidth demands and their penalties, across trials.
	FairnessCorr float64
	// PenaltyStdDev is the mean within-application penalty standard
	// deviation — the paper's "standard deviations shrink with population
	// size" observation.
	PenaltyStdDev float64
	// Penalties pools every agent penalty across trials (for boxplots).
	Penalties []float64
	Trials    int
}

// Figure13 evaluates SMR fairness as the population grows: small systems
// show a weak link between contentiousness and penalty, large systems a
// strong one.
func (l *Lab) Figure13(sizes []int, trials int, seed int64) ([]Figure13Point, error) {
	smr := policy.StableMarriageRandom{}
	var out []Figure13Point
	for _, size := range sizes {
		pt := Figure13Point{Population: size, Trials: trials}
		var corrSum, sdSum float64
		sdCount := 0
		for k := 0; k < trials; k++ {
			popSeed := seed + int64(size)*977 + int64(k)
			pop := l.uniformPopulation(size, popSeed)
			match, d, err := l.assign(smr, pop, stats.NewRand(popSeed+1))
			if err != nil {
				return nil, err
			}
			pens := agentPenalties(match, d)
			pt.Penalties = append(pt.Penalties, pens...)
			bw := make([]float64, len(pop.Jobs))
			for i, j := range pop.Jobs {
				bw[i] = j.BandwidthGBps
			}
			corrSum += stats.Spearman(bw, pens)
			// Within-application spread.
			byApp := make(map[string][]float64)
			for i, j := range pop.Jobs {
				byApp[j.Name] = append(byApp[j.Name], pens[i])
			}
			for _, samples := range byApp {
				if len(samples) >= 2 {
					sdSum += stats.StdDev(samples)
					sdCount++
				}
			}
		}
		pt.FairnessCorr = corrSum / float64(trials)
		if sdCount > 0 {
			pt.PenaltyStdDev = sdSum / float64(sdCount)
		}
		out = append(out, pt)
	}
	return out, nil
}
