package experiments

import (
	"fmt"

	"cooper/internal/matching"
	"cooper/internal/policy"
	"cooper/internal/stats"
)

// Figure9Result counts agents whose performance improved, stayed, or
// degraded when the system switches from a conventional policy to a
// stable one (e.g. SR/GR), averaged over several populations.
type Figure9Result struct {
	Stable, Baseline string
	Improved         int
	Unchanged        int
	Degraded         int
	Populations      int
	AgentsPerPop     int
}

// Label returns the paper's "S*/baseline" bar label.
func (r Figure9Result) Label() string {
	return fmt.Sprintf("%s/%s", r.Stable, r.Baseline)
}

// Figure9 runs the preference-satisfaction comparison for every stable/
// conventional policy pair over pops populations of n uniform agents.
// epsilon is the penalty difference below which an agent counts as
// unchanged.
func (l *Lab) Figure9(pops, n int, epsilon float64, seed int64) ([]Figure9Result, error) {
	stables := []policy.Policy{
		policy.StableRoommate{},
		policy.StableMarriageRandom{},
		policy.StableMarriagePartition{},
	}
	baselines := []policy.Policy{policy.Greedy{}, policy.Complementary{}}

	var out []Figure9Result
	for _, base := range baselines {
		for _, stable := range stables {
			res := Figure9Result{
				Stable:       stable.Name(),
				Baseline:     base.Name(),
				Populations:  pops,
				AgentsPerPop: n,
			}
			for k := 0; k < pops; k++ {
				popSeed := seed + int64(k)
				pop := l.uniformPopulation(n, popSeed)
				mStable, d, err := l.assign(stable, pop, stats.NewRand(popSeed+1000))
				if err != nil {
					return nil, err
				}
				mBase, _, err := l.assign(base, pop, stats.NewRand(popSeed+2000))
				if err != nil {
					return nil, err
				}
				pStable := agentPenalties(mStable, d)
				pBase := agentPenalties(mBase, d)
				for i := range pStable {
					diff := pBase[i] - pStable[i] // positive = stable is better
					switch {
					case diff > epsilon:
						res.Improved++
					case diff < -epsilon:
						res.Degraded++
					default:
						res.Unchanged++
					}
				}
			}
			out = append(out, res)
		}
	}
	return out, nil
}

// Figure10Result is one policy's stability analysis: the distribution,
// across populations, of how many agents recommend breaking away from
// their assigned colocation (i.e. belong to at least one blocking pair),
// for each break-away threshold alpha. This is the paper's Figure 10
// metric — its y-axis tops out near the population size. Raw blocking-
// pair counts are kept alongside.
type Figure10Result struct {
	Policy string
	Alphas []float64
	// Counts[k] holds, for every population, the number of agents
	// recommending break-away at Alphas[k].
	Counts [][]float64
	// PairCounts[k] holds the corresponding raw blocking-pair counts.
	PairCounts [][]float64
	// Boxes[k] summarizes Counts[k].
	Boxes []stats.Boxplot
}

// Figure10 measures break-away recommendations under every policy for
// pops populations of n uniform agents, at each alpha (fractions, e.g.
// 0.02 for 2%).
func (l *Lab) Figure10(pops, n int, alphas []float64, seed int64) ([]Figure10Result, error) {
	var out []Figure10Result
	for _, p := range policy.All() {
		res := Figure10Result{
			Policy:     p.Name(),
			Alphas:     alphas,
			Counts:     make([][]float64, len(alphas)),
			PairCounts: make([][]float64, len(alphas)),
		}
		for k := 0; k < pops; k++ {
			popSeed := seed + int64(k)
			pop := l.uniformPopulation(n, popSeed)
			match, d, err := l.assign(p, pop, stats.NewRand(popSeed+3000))
			if err != nil {
				return nil, err
			}
			for ai, alpha := range alphas {
				pairs := matching.AlphaBlockingPairs(match, d, alpha)
				agents := make(map[int]bool)
				for _, bp := range pairs {
					agents[bp[0]] = true
					agents[bp[1]] = true
				}
				res.Counts[ai] = append(res.Counts[ai], float64(len(agents)))
				res.PairCounts[ai] = append(res.PairCounts[ai], float64(len(pairs)))
			}
		}
		for _, counts := range res.Counts {
			res.Boxes = append(res.Boxes, stats.NewBoxplot(counts))
		}
		out = append(out, res)
	}
	return out, nil
}

// MedianBlocking returns the median blocking-pair count at the given alpha
// index.
func (r Figure10Result) MedianBlocking(alphaIdx int) float64 {
	return r.Boxes[alphaIdx].Median
}
