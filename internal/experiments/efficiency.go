package experiments

import (
	"fmt"

	"cooper/internal/cluster"
	"cooper/internal/energy"
	"cooper/internal/game"
	"cooper/internal/matching"
	"cooper/internal/policy"
	"cooper/internal/profiler"
	"cooper/internal/stats"
)

// EfficiencyRow is one policy's energy and incentive outcome.
type EfficiencyRow struct {
	Policy string
	// EnergyPerJobJ is the energy per completed job under the policy's
	// colocations.
	EnergyPerJobJ float64
	// SavingsPct is the energy-per-job saving versus running every job
	// alone on its own machine.
	SavingsPct float64
	// SharingIncentivePct is the share of agents doing at least as well
	// as with a uniformly random co-runner.
	SharingIncentivePct float64
	MeanPenalty         float64
}

// EfficiencyStudy quantifies the paper's motivation (colocation amortizes
// server power over more work) and the fair-division sharing-incentive
// property, for every policy on one uniform population.
func (l *Lab) EfficiencyStudy(n int, seed int64) ([]EfficiencyRow, error) {
	pop := l.uniformPopulation(n, seed)
	d, err := profiler.ExpandToAgents(l.Dense, l.Catalog, pop)
	if err != nil {
		return nil, err
	}
	bw := make([]float64, n)
	for i, j := range pop.Jobs {
		bw[i] = j.BandwidthGBps
	}
	server := energy.DefaultServer()

	// Solo baseline: every job on its own machine.
	soloCluster, err := cluster.New(n, l.Machine)
	if err != nil {
		return nil, err
	}
	var soloBatch []cluster.Assignment
	for i, j := range pop.Jobs {
		soloBatch = append(soloBatch, cluster.Assignment{AgentA: i, AgentB: -1, JobA: j})
	}
	soloResults := soloCluster.Dispatch(soloBatch)

	var out []EfficiencyRow
	for _, p := range policy.All() {
		match, err := p.Assign(d, policy.Context{
			BandwidthGBps: bw,
			Rand:          stats.NewRand(seed + 11),
		})
		if err != nil {
			return nil, err
		}
		machines := 0
		var batch []cluster.Assignment
		for i, j := range match {
			switch {
			case j == matching.Unmatched:
				machines++
				batch = append(batch, cluster.Assignment{
					AgentA: i, AgentB: -1, JobA: pop.Jobs[i],
				})
			case i < j:
				machines++
				batch = append(batch, cluster.Assignment{
					AgentA: i, AgentB: j, JobA: pop.Jobs[i], JobB: pop.Jobs[j],
				})
			}
		}
		cl, err := cluster.New(machines, l.Machine)
		if err != nil {
			return nil, err
		}
		results := cl.Dispatch(batch)
		cmp, err := energy.Compare(server, machines, results, n, soloResults)
		if err != nil {
			return nil, err
		}
		si, err := game.SharingIncentive(match, d)
		if err != nil {
			return nil, err
		}
		out = append(out, EfficiencyRow{
			Policy:              p.Name(),
			EnergyPerJobJ:       cmp.Colocated.EnergyPerJobJ,
			SavingsPct:          cmp.SavingsPct,
			SharingIncentivePct: si * 100,
			MeanPenalty:         stats.Mean(agentPenalties(match, d)),
		})
	}
	return out, nil
}

// RenderEfficiency formats the study.
func RenderEfficiency(rows []EfficiencyRow) string {
	out := "Efficiency: energy per job and sharing incentives by policy\n"
	out += fmt.Sprintf("  %-7s %-14s %-10s %-18s %-10s\n",
		"policy", "energy/job", "savings", "sharing incentive", "penalty")
	for _, r := range rows {
		out += fmt.Sprintf("  %-7s %-14s %-10s %-18s %-10.4f\n",
			r.Policy,
			fmt.Sprintf("%.0f kJ", r.EnergyPerJobJ/1000),
			fmt.Sprintf("%.0f%%", r.SavingsPct),
			fmt.Sprintf("%.0f%%", r.SharingIncentivePct),
			r.MeanPenalty)
	}
	out += "  savings are versus one job per machine — the paper's motivating waste\n"
	return out
}
