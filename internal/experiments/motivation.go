package experiments

import (
	"fmt"

	"cooper/internal/game"
	"cooper/internal/matching"
	"cooper/internal/stats"
)

// MotivationUsers are the four users of the paper's Figures 2 and 3:
// (A) x264, (B) fluidanimate, (C) decision-tree, (D) regression.
var MotivationUsers = []string{"x264", "fluidanim", "decision", "linear"}

// UserOutcome is one user's result under a matching.
type UserOutcome struct {
	User          string
	Label         string // A, B, C, D
	Partner       string
	Penalty       float64
	BandwidthGBps float64
}

// MotivationResult compares the performance-optimal colocation with the
// stability-optimal one for the four motivating users (Figures 2 and 3).
type MotivationResult struct {
	Performance []UserOutcome // minimizes total penalty
	Stability   []UserOutcome // minimizes blocking pairs
	// Blocking pair counts under each matching.
	PerformanceBlocking int
	StabilityBlocking   int
	// Fairness correlations (penalty vs bandwidth) under each matching.
	PerformanceFairness float64
	StabilityFairness   float64
}

// Motivation reproduces the Figures 2-3 study: enumerate all colocations
// of the four users, pick the performance- and stability-optimal ones, and
// compare penalties, stability and fairness.
func (l *Lab) Motivation() (*MotivationResult, error) {
	idx := l.jobIndex()
	n := len(MotivationUsers)
	d := make([][]float64, n)
	bw := make([]float64, n)
	for a, name := range MotivationUsers {
		job, err := l.mustFind(name)
		if err != nil {
			return nil, err
		}
		bw[a] = job.BandwidthGBps
		d[a] = make([]float64, n)
		for b, other := range MotivationUsers {
			if a != b {
				d[a][b] = l.Dense[idx[name]][idx[other]]
			}
		}
	}
	analysis, err := game.Analyze(d)
	if err != nil {
		return nil, err
	}
	outcomes := func(m matching.Matching) []UserOutcome {
		out := make([]UserOutcome, n)
		for a := range out {
			out[a] = UserOutcome{
				User:          MotivationUsers[a],
				Label:         string(rune('A' + a)),
				Partner:       MotivationUsers[m[a]],
				Penalty:       d[a][m[a]],
				BandwidthGBps: bw[a],
			}
		}
		return out
	}
	perf := outcomes(analysis.Optimal)
	stab := outcomes(analysis.Stable)
	fairness := func(out []UserOutcome) float64 {
		var pens, bws []float64
		for _, o := range out {
			pens = append(pens, o.Penalty)
			bws = append(bws, o.BandwidthGBps)
		}
		return stats.Spearman(pens, bws)
	}
	return &MotivationResult{
		Performance:         perf,
		Stability:           stab,
		PerformanceBlocking: analysis.OptimalBlockingPairs,
		StabilityBlocking:   analysis.StableBlockingPairs,
		PerformanceFairness: fairness(perf),
		StabilityFairness:   fairness(stab),
	}, nil
}

// Figure5Trace reproduces the paper's worked stable-marriage example with
// its exact preference lists, reporting the proposal rounds and final
// colocation.
type Figure5Trace struct {
	Rounds int
	// Pairs maps proposer labels (m1..m3) to receiver labels (c1..c3).
	Pairs map[string]string
}

// Figure5 runs the worked example.
func Figure5() (*Figure5Trace, error) {
	proposers := [][]int{
		{0, 1, 2}, // m1: c1 > c2 > c3
		{2, 0, 1}, // m2: c3 > c1 > c2
		{0, 1, 2}, // m3: c1 > c2 > c3
	}
	receivers := [][]int{
		{1, 2, 0}, // c1: m2 > m3 > m1
		{2, 0, 1}, // c2: m3 > m1 > m2
		{1, 0, 2}, // c3: m2 > m1 > m3
	}
	match, rounds, err := matching.StableMarriageRounds(proposers, receivers)
	if err != nil {
		return nil, err
	}
	trace := &Figure5Trace{Rounds: rounds, Pairs: make(map[string]string)}
	for m, c := range match {
		trace.Pairs[fmt.Sprintf("m%d", m+1)] = fmt.Sprintf("c%d", c+1)
	}
	return trace, nil
}

// Figure14Row is one permutation row of the appendix's Shapley table.
type Figure14Row struct {
	Order     []string
	Marginals []float64 // marginal contribution of users A, B, C
}

// Figure14Result is the appendix example: coalition values, the
// permutation table and the resulting Shapley values.
type Figure14Result struct {
	Interference []float64
	Rows         []Figure14Row
	Shapley      []float64
}

// Figure14 reproduces the appendix's Shapley example with interference
// contributions I = {1, 2, 3}.
func Figure14() (*Figure14Result, error) {
	interference := []float64{1, 2, 3}
	v := game.AdditiveInterference(interference)
	phi, err := game.Shapley(3, v)
	if err != nil {
		return nil, err
	}
	names := []string{"A", "B", "C"}
	orders := [][]int{
		{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0},
	}
	res := &Figure14Result{Interference: interference, Shapley: phi}
	for _, ord := range orders {
		row := Figure14Row{Marginals: make([]float64, 3)}
		var prefix []int
		for _, u := range ord {
			row.Order = append(row.Order, names[u])
			row.Marginals[u] = game.MarginalContribution(v, prefix, u)
			prefix = append(prefix, u)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
