// Package experiments reproduces every table and figure in the paper's
// evaluation: the workload catalog (Table I), the motivation studies
// (Figures 1-3, 5), the per-application fairness profiles (Figures 7-8),
// preference satisfaction (Figure 9), stability under the break-away
// threshold (Figure 10), workload-mix sensitivity (Figure 11), prediction
// accuracy (Figure 12), scalability (Figure 13), and the Shapley appendix
// (Figure 14).
//
// Each experiment is a method on Lab, parameterized so benchmarks can run
// scaled-down versions; the cmd/cooper-sim tool runs them at paper scale.
package experiments

import (
	"fmt"
	"math/rand"

	"cooper/internal/arch"
	"cooper/internal/matching"
	"cooper/internal/policy"
	"cooper/internal/profiler"
	"cooper/internal/stats"
	"cooper/internal/workload"
)

// Lab holds the shared experimental apparatus: the simulated machine, the
// calibrated catalog, and the oracle penalty matrix. Experiments that
// evaluate colocation policies use oracle penalties (as the paper does
// when assessing outcomes); the prediction experiments layer sparsity and
// noise on top.
type Lab struct {
	Machine arch.CMP
	Catalog []workload.Job
	// Dense is the oracle job-level penalty matrix: Dense[i][j] is
	// catalog job i's disutility when colocated with catalog job j.
	Dense [][]float64
}

// NewLab builds the apparatus on the default machine.
func NewLab() (*Lab, error) {
	m := arch.DefaultCMP()
	catalog, err := workload.Catalog(m)
	if err != nil {
		return nil, err
	}
	return &Lab{
		Machine: m,
		Catalog: catalog,
		Dense:   profiler.DensePenalties(m, catalog),
	}, nil
}

// assign runs a policy on a population using oracle penalties and returns
// the matching plus the agent-level penalty matrix it was computed from.
func (l *Lab) assign(p policy.Policy, pop workload.Population, r *rand.Rand) (matching.Matching, [][]float64, error) {
	d, err := profiler.ExpandToAgents(l.Dense, l.Catalog, pop)
	if err != nil {
		return nil, nil, err
	}
	bw := make([]float64, len(pop.Jobs))
	for i, j := range pop.Jobs {
		bw[i] = j.BandwidthGBps
	}
	match, err := p.Assign(d, policy.Context{BandwidthGBps: bw, Rand: r})
	if err != nil {
		return nil, nil, err
	}
	return match, d, nil
}

// agentPenalties returns each agent's oracle penalty under the matching.
func agentPenalties(match matching.Matching, d [][]float64) []float64 {
	pen := make([]float64, len(match))
	for i, j := range match {
		if j != matching.Unmatched {
			pen[i] = d[i][j]
		}
	}
	return pen
}

// jobIndex maps catalog names to indices.
func (l *Lab) jobIndex() map[string]int {
	idx := make(map[string]int, len(l.Catalog))
	for i, j := range l.Catalog {
		idx[j.Name] = i
	}
	return idx
}

// mustFind returns the catalog job by name or an error.
func (l *Lab) mustFind(name string) (workload.Job, error) {
	j, ok := workload.Find(l.Catalog, name)
	if !ok {
		return workload.Job{}, fmt.Errorf("experiments: job %q not in catalog", name)
	}
	return j, nil
}

// uniformPopulation samples n agents uniformly with a derived seed.
func (l *Lab) uniformPopulation(n int, seed int64) workload.Population {
	return workload.Sample(n, l.Catalog, stats.Uniform{}, stats.NewRand(seed))
}
