package experiments

import (
	"fmt"
	"sort"

	"cooper/internal/matching"
	"cooper/internal/policy"
	"cooper/internal/profiler"
	"cooper/internal/stats"
)

// ManipulationPoint is one misreporting strategy's outcome for the
// manipulating agent.
type ManipulationPoint struct {
	Strategy string
	// TruePenalty is the penalty the manipulator actually suffers under
	// the matching computed from its (possibly false) report.
	TruePenalty float64
	// Gain is truthful penalty minus this strategy's penalty (positive =
	// the lie paid off).
	Gain float64
}

// ManipulationResult is the strategic-behavior study: can a single agent
// gain by misreporting its preferences to the coordinator? The paper
// motivates Cooper by the need to "guard against strategic behavior";
// deferred acceptance is strategy-proof for proposers, and this study
// measures what the game's structure leaves on the table for liars.
type ManipulationResult struct {
	Agent     int
	AgentJob  string
	Truthful  float64 // penalty when reporting honestly
	Points    []ManipulationPoint
	BestGain  float64 // the most any tested lie gained
	WorstLoss float64 // the most any tested lie cost
}

// Manipulation runs the study: fix a population and an SMR-style random
// partition, then let one agent misreport its penalty row under several
// canonical strategies (inverting preferences, claiming indifference,
// exaggerating its sensitivity, understating it) and measure the true
// penalty each report earns it.
func (l *Lab) Manipulation(n int, agentIdx int, seed int64) (*ManipulationResult, error) {
	pop := l.uniformPopulation(n, seed)
	if agentIdx < 0 || agentIdx >= n {
		return nil, fmt.Errorf("experiments: agent %d outside population of %d", agentIdx, n)
	}
	trueD, err := profiler.ExpandToAgents(l.Dense, l.Catalog, pop)
	if err != nil {
		return nil, err
	}
	bw := make([]float64, n)
	for i, j := range pop.Jobs {
		bw[i] = j.BandwidthGBps
	}
	smr := policy.StableMarriageRandom{}

	evaluate := func(reported [][]float64) (float64, error) {
		// Same seed: the random partition is identical across reports, so
		// only the manipulation differs.
		match, err := smr.Assign(reported, policy.Context{
			BandwidthGBps: bw,
			Rand:          stats.NewRand(seed + 7),
		})
		if err != nil {
			return 0, err
		}
		if match[agentIdx] == matching.Unmatched {
			return 0, nil
		}
		return trueD[agentIdx][match[agentIdx]], nil
	}

	withRow := func(mutate func(row []float64)) [][]float64 {
		reported := make([][]float64, n)
		for i := range trueD {
			reported[i] = append([]float64(nil), trueD[i]...)
		}
		mutate(reported[agentIdx])
		return reported
	}

	truthful, err := evaluate(trueD)
	if err != nil {
		return nil, err
	}

	strategies := []struct {
		name   string
		mutate func(row []float64)
	}{
		{"invert", func(row []float64) {
			// Reverse the preference order: claim to love what it hates.
			max := stats.Max(row)
			for j := range row {
				if j != agentIdx {
					row[j] = max - row[j]
				}
			}
		}},
		{"indifferent", func(row []float64) {
			for j := range row {
				if j != agentIdx {
					row[j] = 0.05
				}
			}
		}},
		{"exaggerate", func(row []float64) {
			for j := range row {
				row[j] *= 5
			}
		}},
		{"understate", func(row []float64) {
			for j := range row {
				row[j] *= 0.2
			}
		}},
		{"truncate", func(row []float64) {
			// Claim unbearable penalties with everyone except the three
			// co-runners it truly prefers.
			type cand struct {
				j int
				d float64
			}
			var cands []cand
			for j := range row {
				if j != agentIdx {
					cands = append(cands, cand{j, row[j]})
				}
			}
			sort.Slice(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
			for k := 3; k < len(cands); k++ {
				row[cands[k].j] = 1
			}
		}},
	}

	res := &ManipulationResult{
		Agent:    agentIdx,
		AgentJob: pop.Jobs[agentIdx].Name,
		Truthful: truthful,
	}
	for _, s := range strategies {
		pen, err := evaluate(withRow(s.mutate))
		if err != nil {
			return nil, err
		}
		pt := ManipulationPoint{
			Strategy:    s.name,
			TruePenalty: pen,
			Gain:        truthful - pen,
		}
		res.Points = append(res.Points, pt)
		if pt.Gain > res.BestGain {
			res.BestGain = pt.Gain
		}
		if -pt.Gain > res.WorstLoss {
			res.WorstLoss = -pt.Gain
		}
	}
	return res, nil
}

// ChurnPoint is one epoch of the churn study.
type ChurnPoint struct {
	Epoch       int
	Replaced    int // agents that departed and were replaced this epoch
	PairsKept   int // pairs identical to the previous epoch's matching
	PairsTotal  int
	MeanPenalty float64
	BlockingPct float64 // agents in blocking pairs / population
}

// Churn runs successive epochs over a population in which a fraction of
// agents departs each epoch and is replaced by fresh arrivals, measuring
// how much of the matching survives — the re-matching stability of the
// colocation game under the paper's periodic scheduling.
func (l *Lab) Churn(n, epochs int, churnFraction float64, seed int64) ([]ChurnPoint, error) {
	if churnFraction < 0 || churnFraction > 1 {
		return nil, fmt.Errorf("experiments: churn fraction %v outside [0,1]", churnFraction)
	}
	r := stats.NewRand(seed)
	ordered := l.Catalog
	pop := l.uniformPopulation(n, seed+1)
	smr := policy.StableMarriageRandom{}

	var prev matching.Matching
	var out []ChurnPoint
	for e := 0; e < epochs; e++ {
		replaced := 0
		if e > 0 {
			for i := range pop.Jobs {
				if r.Float64() < churnFraction {
					pop.Jobs[i] = ordered[r.Intn(len(ordered))]
					replaced++
				}
			}
		}
		d, err := profiler.ExpandToAgents(l.Dense, l.Catalog, pop)
		if err != nil {
			return nil, err
		}
		bw := make([]float64, n)
		for i, j := range pop.Jobs {
			bw[i] = j.BandwidthGBps
		}
		match, err := smr.Assign(d, policy.Context{BandwidthGBps: bw, Rand: r})
		if err != nil {
			return nil, err
		}
		point := ChurnPoint{Epoch: e, Replaced: replaced}
		for i, j := range match {
			if j == matching.Unmatched || i > j {
				continue
			}
			point.PairsTotal++
			if prev != nil && prev[i] == j {
				point.PairsKept++
			}
		}
		pens := agentPenalties(match, d)
		point.MeanPenalty = stats.Mean(pens)
		pairs := matching.AlphaBlockingPairs(match, d, 0.02)
		agents := map[int]bool{}
		for _, bp := range pairs {
			agents[bp[0]] = true
			agents[bp[1]] = true
		}
		point.BlockingPct = 100 * float64(len(agents)) / float64(n)
		out = append(out, point)
		prev = match
	}
	return out, nil
}

// RenderStrategic formats the manipulation and churn studies.
func RenderStrategic(m *ManipulationResult, churn []ChurnPoint) string {
	out := fmt.Sprintf("Strategic behavior: agent %d (%s) misreporting its preferences (SMR)\n",
		m.Agent, m.AgentJob)
	out += fmt.Sprintf("  truthful penalty %.4f\n", m.Truthful)
	for _, p := range m.Points {
		out += fmt.Sprintf("  %-12s -> penalty %.4f (gain %+.4f)\n",
			p.Strategy, p.TruePenalty, p.Gain)
	}
	out += fmt.Sprintf("  best gain from lying: %+.4f; worst self-inflicted loss: %.4f\n\n",
		m.BestGain, m.WorstLoss)

	out += "Churn: re-matching stability under agent turnover (SMR)\n"
	out += fmt.Sprintf("  %-6s %-9s %-10s %-12s %-10s\n",
		"epoch", "replaced", "kept", "penalty", "blocking")
	for _, c := range churn {
		kept := "-"
		if c.Epoch > 0 {
			kept = fmt.Sprintf("%d/%d", c.PairsKept, c.PairsTotal)
		}
		out += fmt.Sprintf("  %-6d %-9d %-10s %-12.4f %-10s\n",
			c.Epoch, c.Replaced, kept, c.MeanPenalty,
			fmt.Sprintf("%.1f%%", c.BlockingPct))
	}
	return out
}
