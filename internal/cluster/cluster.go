// Package cluster simulates the shared datacenter Cooper manages: a set
// of machines (chip multiprocessors), a job dispatcher that sends assigned
// colocations to the least-loaded machine, and per-machine daemons that
// execute work — the role played in the paper by five dual-socket Xeon
// nodes running a polling daemon.
//
// Execution is simulated on a virtual clock: a colocated pair's completion
// time stretches each job's standalone runtime by its contention penalty
// (the shorter job is re-run until the longer completes, per the paper's
// multiprogrammed-benchmarking methodology), so the cluster reports
// deterministic makespans and utilization.
package cluster

import (
	"fmt"
	"sort"
	"sync"

	"cooper/internal/arch"
	"cooper/internal/workload"
)

// Assignment is one dispatched unit of work: a pair of agents' jobs (or a
// single job running alone when AgentB < 0).
type Assignment struct {
	AgentA, AgentB int
	JobA, JobB     workload.Job
}

// Solo reports whether the assignment runs a single job.
func (a Assignment) Solo() bool { return a.AgentB < 0 }

// Result records one executed assignment.
type Result struct {
	Machine      string
	Assignment   Assignment
	StartS, EndS float64 // virtual start and completion times
	PenaltyA     float64 // contention penalty suffered by JobA
	PenaltyB     float64 // contention penalty suffered by JobB (0 if solo)
	DurationA    float64 // JobA's stretched runtime
	DurationB    float64 // JobB's stretched runtime
}

// Machine is one CMP plus its daemon's work queue.
type Machine struct {
	ID  string
	CMP arch.CMP

	mu    sync.Mutex
	queue []Assignment
	clock float64 // virtual time at which the machine becomes free
	busy  float64 // accumulated busy time
}

// Cluster is a set of machines fed by a dispatcher.
type Cluster struct {
	machines []*Machine
	cache    *arch.PairCache
}

// SetPairCache installs a memoization cache for the contention solves the
// virtual execution performs (one solo+pair equilibrium per dispatched
// colocation). The cache must be keyed to the machines' CMP; a cache for
// different hardware is ignored. Nil uninstalls.
func (c *Cluster) SetPairCache(pc *arch.PairCache) {
	if pc != nil && len(c.machines) > 0 && !pc.Keyed(c.machines[0].CMP) {
		return
	}
	c.cache = pc
}

// New builds a cluster of n identical machines.
func New(n int, cmp arch.CMP) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least one machine, got %d", n)
	}
	c := &Cluster{machines: make([]*Machine, n)}
	for i := range c.machines {
		c.machines[i] = &Machine{
			ID:  fmt.Sprintf("node-%02d", i),
			CMP: cmp,
		}
	}
	return c, nil
}

// Size returns the number of machines.
func (c *Cluster) Size() int { return len(c.machines) }

// Dispatch assigns work to machines — each assignment goes to the machine
// that will start it earliest (least-loaded first, ties by machine index,
// so placement is deterministic) — then lets every machine daemon drain
// its queue concurrently. It returns all execution results ordered by
// start time.
func (c *Cluster) Dispatch(assignments []Assignment) []Result {
	// Deterministic placement on the least-loaded machine.
	loads := make([]float64, len(c.machines))
	for i, m := range c.machines {
		loads[i] = m.clock
	}
	for _, a := range assignments {
		best := 0
		for i := 1; i < len(loads); i++ {
			if loads[i] < loads[best] {
				best = i
			}
		}
		m := c.machines[best]
		m.queue = append(m.queue, a)
		loads[best] += estimateDuration(m.CMP, a, c.cache)
	}

	// Daemons drain their queues concurrently (the paper's per-machine
	// polling daemons).
	resultCh := make(chan []Result, len(c.machines))
	var wg sync.WaitGroup
	for _, m := range c.machines {
		wg.Add(1)
		go func(m *Machine) {
			defer wg.Done()
			resultCh <- m.drain(c.cache)
		}(m)
	}
	wg.Wait()
	close(resultCh)

	var results []Result
	for rs := range resultCh {
		results = append(results, rs...)
	}
	sort.Slice(results, func(a, b int) bool {
		if results[a].StartS != results[b].StartS {
			return results[a].StartS < results[b].StartS
		}
		return results[a].Machine < results[b].Machine
	})
	return results
}

// drain executes the machine's queued assignments in order on its virtual
// clock, routing contention solves through cache when non-nil.
func (m *Machine) drain(cache *arch.PairCache) []Result {
	m.mu.Lock()
	defer m.mu.Unlock()
	var results []Result
	for _, a := range m.queue {
		r := execute(m.CMP, a, cache)
		r.Machine = m.ID
		r.StartS = m.clock
		duration := r.DurationA
		if r.DurationB > duration {
			duration = r.DurationB
		}
		r.EndS = m.clock + duration
		m.clock = r.EndS
		m.busy += duration
		results = append(results, r)
	}
	m.queue = nil
	return results
}

// execute computes the simulated outcome of one assignment, memoizing
// the contention solves through cache when non-nil.
func execute(cmp arch.CMP, a Assignment, cache *arch.PairCache) Result {
	if a.Solo() {
		return Result{
			Assignment: a,
			DurationA:  a.JobA.RuntimeS,
		}
	}
	var soloA, soloB, perfA, perfB arch.Perf
	if cache.Keyed(cmp) {
		soloA = cache.Solo(a.JobA.Name, a.JobA.Model)
		soloB = cache.Solo(a.JobB.Name, a.JobB.Model)
		perfA, perfB = cache.Pair(a.JobA.Name, a.JobA.Model, a.JobB.Name, a.JobB.Model)
	} else {
		soloA = cmp.Solo(a.JobA.Model)
		soloB = cmp.Solo(a.JobB.Model)
		perfA, perfB = cmp.Pair(a.JobA.Model, a.JobB.Model)
	}
	dA := arch.Disutility(soloA, perfA)
	dB := arch.Disutility(soloB, perfB)
	return Result{
		Assignment: a,
		PenaltyA:   dA,
		PenaltyB:   dB,
		DurationA:  stretch(a.JobA.RuntimeS, dA),
		DurationB:  stretch(a.JobB.RuntimeS, dB),
	}
}

// stretch converts a throughput penalty into a runtime stretch: losing a
// fraction d of throughput lengthens the run by 1/(1-d).
func stretch(runtime, d float64) float64 {
	if d >= 1 {
		d = 0.99
	}
	if d < 0 {
		d = 0
	}
	return runtime / (1 - d)
}

func estimateDuration(cmp arch.CMP, a Assignment, cache *arch.PairCache) float64 {
	r := execute(cmp, a, cache)
	if r.DurationB > r.DurationA {
		return r.DurationB
	}
	return r.DurationA
}

// Report summarizes a dispatch round.
type Report struct {
	MakespanS      float64 // time until the last machine finishes
	BusyS          float64 // total machine-busy seconds
	UtilizationPct float64 // busy time / (machines x makespan)
	MeanPenalty    float64 // mean per-job contention penalty
	Jobs           int
}

// Summarize computes a Report over dispatch results for this cluster.
func (c *Cluster) Summarize(results []Result) Report {
	rep := Report{}
	var penaltySum float64
	for _, r := range results {
		if r.EndS > rep.MakespanS {
			rep.MakespanS = r.EndS
		}
		rep.Jobs++
		penaltySum += r.PenaltyA
		if !r.Assignment.Solo() {
			rep.Jobs++
			penaltySum += r.PenaltyB
		}
	}
	for _, m := range c.machines {
		rep.BusyS += m.busy
	}
	if rep.Jobs > 0 {
		rep.MeanPenalty = penaltySum / float64(rep.Jobs)
	}
	if rep.MakespanS > 0 {
		rep.UtilizationPct = 100 * rep.BusyS / (float64(len(c.machines)) * rep.MakespanS)
	}
	return rep
}

// Reset clears all machine clocks and queues.
func (c *Cluster) Reset() {
	for _, m := range c.machines {
		m.mu.Lock()
		m.queue = nil
		m.clock = 0
		m.busy = 0
		m.mu.Unlock()
	}
}
