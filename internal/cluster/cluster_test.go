package cluster

import (
	"math"
	"testing"

	"cooper/internal/arch"
	"cooper/internal/workload"
)

func testJobs(t *testing.T) []workload.Job {
	t.Helper()
	jobs, err := workload.Catalog(arch.DefaultCMP())
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, arch.DefaultCMP()); err == nil {
		t.Error("zero machines accepted")
	}
	c, err := New(5, arch.DefaultCMP())
	if err != nil || c.Size() != 5 {
		t.Errorf("size = %d, err = %v", c.Size(), err)
	}
}

func TestDispatchSoloJob(t *testing.T) {
	jobs := testJobs(t)
	c, _ := New(2, arch.DefaultCMP())
	swapt, _ := workload.Find(jobs, "swapt")
	results := c.Dispatch([]Assignment{{AgentA: 0, AgentB: -1, JobA: swapt}})
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
	r := results[0]
	if r.PenaltyA != 0 || r.PenaltyB != 0 {
		t.Errorf("solo run should have no penalty: %+v", r)
	}
	if r.DurationA != swapt.RuntimeS {
		t.Errorf("solo duration = %v, want %v", r.DurationA, swapt.RuntimeS)
	}
	if r.EndS != r.StartS+swapt.RuntimeS {
		t.Errorf("end = %v", r.EndS)
	}
}

func TestDispatchPairStretchesRuntime(t *testing.T) {
	jobs := testJobs(t)
	c, _ := New(1, arch.DefaultCMP())
	corr, _ := workload.Find(jobs, "correlation")
	stream, _ := workload.Find(jobs, "stream")
	results := c.Dispatch([]Assignment{{AgentA: 0, AgentB: 1, JobA: corr, JobB: stream}})
	r := results[0]
	if r.PenaltyA <= 0 || r.PenaltyB <= 0 {
		t.Errorf("contentious pair should suffer: %+v", r)
	}
	if r.DurationA <= corr.RuntimeS {
		t.Errorf("duration %v should exceed standalone %v", r.DurationA, corr.RuntimeS)
	}
	want := corr.RuntimeS / (1 - r.PenaltyA)
	if math.Abs(r.DurationA-want) > 1e-9 {
		t.Errorf("stretch mismatch: %v vs %v", r.DurationA, want)
	}
}

func TestDispatchBalancesLoad(t *testing.T) {
	jobs := testJobs(t)
	c, _ := New(2, arch.DefaultCMP())
	swapt, _ := workload.Find(jobs, "swapt")
	var batch []Assignment
	for i := 0; i < 4; i++ {
		batch = append(batch, Assignment{AgentA: i, AgentB: -1, JobA: swapt})
	}
	results := c.Dispatch(batch)
	perMachine := make(map[string]int)
	for _, r := range results {
		perMachine[r.Machine]++
	}
	if len(perMachine) != 2 || perMachine["node-00"] != 2 || perMachine["node-01"] != 2 {
		t.Errorf("load not balanced: %v", perMachine)
	}
}

func TestDispatchQueuesWhenOverloaded(t *testing.T) {
	jobs := testJobs(t)
	c, _ := New(1, arch.DefaultCMP())
	swapt, _ := workload.Find(jobs, "swapt")
	results := c.Dispatch([]Assignment{
		{AgentA: 0, AgentB: -1, JobA: swapt},
		{AgentA: 1, AgentB: -1, JobA: swapt},
	})
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if results[1].StartS != results[0].EndS {
		t.Errorf("second job should queue: start %v vs first end %v",
			results[1].StartS, results[0].EndS)
	}
}

func TestSummarize(t *testing.T) {
	jobs := testJobs(t)
	c, _ := New(2, arch.DefaultCMP())
	corr, _ := workload.Find(jobs, "correlation")
	dedup, _ := workload.Find(jobs, "dedup")
	swapt, _ := workload.Find(jobs, "swapt")
	results := c.Dispatch([]Assignment{
		{AgentA: 0, AgentB: 1, JobA: corr, JobB: dedup},
		{AgentA: 2, AgentB: -1, JobA: swapt},
	})
	rep := c.Summarize(results)
	if rep.Jobs != 3 {
		t.Errorf("jobs = %d, want 3", rep.Jobs)
	}
	if rep.MakespanS <= 0 || rep.BusyS <= 0 {
		t.Errorf("report = %+v", rep)
	}
	if rep.UtilizationPct <= 0 || rep.UtilizationPct > 100 {
		t.Errorf("utilization = %v", rep.UtilizationPct)
	}
	if rep.MeanPenalty <= 0 {
		t.Errorf("mean penalty = %v", rep.MeanPenalty)
	}
}

func TestReset(t *testing.T) {
	jobs := testJobs(t)
	c, _ := New(1, arch.DefaultCMP())
	swapt, _ := workload.Find(jobs, "swapt")
	c.Dispatch([]Assignment{{AgentA: 0, AgentB: -1, JobA: swapt}})
	c.Reset()
	results := c.Dispatch([]Assignment{{AgentA: 1, AgentB: -1, JobA: swapt}})
	if results[0].StartS != 0 {
		t.Errorf("after reset start = %v, want 0", results[0].StartS)
	}
}

func TestDispatchDeterministic(t *testing.T) {
	jobs := testJobs(t)
	mk := func() []Result {
		c, _ := New(3, arch.DefaultCMP())
		var batch []Assignment
		for i := 0; i < 10; i++ {
			batch = append(batch, Assignment{
				AgentA: 2 * i, AgentB: 2*i + 1,
				JobA: jobs[i%len(jobs)], JobB: jobs[(i*7)%len(jobs)],
			})
		}
		return c.Dispatch(batch)
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatal("nondeterministic result count")
	}
	for i := range a {
		if a[i].Machine != b[i].Machine || a[i].StartS != b[i].StartS {
			t.Fatalf("nondeterministic placement at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
