// Package energy models server power and energy, quantifying the paper's
// motivation: servers draw large idle power, so running one small task
// per machine wastes energy, and colocation amortizes the fixed cost over
// more work ("when a server's large power costs are amortized over little
// work, energy efficiency suffers"). The model is the standard linear
// datacenter abstraction: P(u) = P_idle + (P_peak - P_idle) * u.
package energy

import (
	"fmt"

	"cooper/internal/cluster"
)

// ServerModel is the power envelope of one machine.
type ServerModel struct {
	// IdleWatts is the power drawn at zero utilization.
	IdleWatts float64
	// PeakWatts is the power drawn at full utilization.
	PeakWatts float64
}

// DefaultServer reflects the paper's dual-socket Xeon era: ~150 W idle,
// ~400 W peak per node.
func DefaultServer() ServerModel {
	return ServerModel{IdleWatts: 150, PeakWatts: 400}
}

// Validate reports whether the model is usable.
func (m ServerModel) Validate() error {
	if m.IdleWatts < 0 || m.PeakWatts <= 0 || m.PeakWatts < m.IdleWatts {
		return fmt.Errorf("energy: implausible power envelope %+v", m)
	}
	return nil
}

// Power returns the draw at utilization u in [0, 1].
func (m ServerModel) Power(u float64) float64 {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return m.IdleWatts + (m.PeakWatts-m.IdleWatts)*u
}

// Report is the energy accounting of one dispatch round.
type Report struct {
	Machines        int
	MakespanS       float64
	EnergyJ         float64 // total energy over the makespan
	EnergyPerJobJ   float64
	MeanUtilization float64
}

// Account computes the energy of executing the dispatch results on a
// cluster of `machines` nodes: every powered node draws idle power for
// the full makespan plus dynamic power while busy. Each result's busy
// interval runs one (solo) or two (pair) jobs; a colocated pair drives
// utilization to 1.0, a solo job to 0.5 (half the CMP's threads).
func Account(model ServerModel, machines int, results []cluster.Result) (Report, error) {
	if err := model.Validate(); err != nil {
		return Report{}, err
	}
	if machines <= 0 {
		return Report{}, fmt.Errorf("energy: need at least one machine")
	}
	rep := Report{Machines: machines}
	jobs := 0
	var busyUtilIntegral, busyIntegral float64
	for _, r := range results {
		if r.EndS > rep.MakespanS {
			rep.MakespanS = r.EndS
		}
		dur := r.EndS - r.StartS
		util := 0.5
		jobs++
		if !r.Assignment.Solo() {
			util = 1.0
			jobs++
		}
		busyUtilIntegral += util * dur
		busyIntegral += dur
	}
	if rep.MakespanS == 0 {
		return rep, nil
	}
	// Idle floor for every powered machine over the whole makespan, plus
	// dynamic power proportional to utilization while busy.
	idleJ := model.IdleWatts * float64(machines) * rep.MakespanS
	dynamicJ := (model.PeakWatts - model.IdleWatts) * busyUtilIntegral
	rep.EnergyJ = idleJ + dynamicJ
	if jobs > 0 {
		rep.EnergyPerJobJ = rep.EnergyJ / float64(jobs)
	}
	rep.MeanUtilization = busyUtilIntegral / (float64(machines) * rep.MakespanS)
	return rep, nil
}

// Comparison contrasts a colocated schedule with a solo schedule of the
// same work.
type Comparison struct {
	Colocated Report
	Solo      Report
	// SavingsPct is the energy-per-job reduction from colocation.
	SavingsPct float64
}

// Compare runs the energy accounting for both schedules.
func Compare(model ServerModel, colocatedMachines int, colocated []cluster.Result,
	soloMachines int, solo []cluster.Result) (Comparison, error) {
	c, err := Account(model, colocatedMachines, colocated)
	if err != nil {
		return Comparison{}, err
	}
	s, err := Account(model, soloMachines, solo)
	if err != nil {
		return Comparison{}, err
	}
	cmp := Comparison{Colocated: c, Solo: s}
	if s.EnergyPerJobJ > 0 {
		cmp.SavingsPct = 100 * (1 - c.EnergyPerJobJ/s.EnergyPerJobJ)
	}
	return cmp, nil
}
