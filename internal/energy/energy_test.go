package energy

import (
	"math"
	"testing"

	"cooper/internal/arch"
	"cooper/internal/cluster"
	"cooper/internal/workload"
)

func TestServerModelValidate(t *testing.T) {
	if err := DefaultServer().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []ServerModel{
		{IdleWatts: -1, PeakWatts: 100},
		{IdleWatts: 100, PeakWatts: 0},
		{IdleWatts: 500, PeakWatts: 400},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("model %d accepted", i)
		}
	}
}

func TestPowerCurve(t *testing.T) {
	m := ServerModel{IdleWatts: 100, PeakWatts: 300}
	cases := []struct{ u, want float64 }{
		{0, 100}, {0.5, 200}, {1, 300}, {-1, 100}, {2, 300},
	}
	for _, tt := range cases {
		if got := m.Power(tt.u); got != tt.want {
			t.Errorf("Power(%v) = %v, want %v", tt.u, got, tt.want)
		}
	}
}

func dispatchPairsAndSolos(t *testing.T, colocate bool) (int, []cluster.Result) {
	t.Helper()
	cmp := arch.DefaultCMP()
	jobs, err := workload.Catalog(cmp)
	if err != nil {
		t.Fatal(err)
	}
	swapt, _ := workload.Find(jobs, "swapt")
	x264, _ := workload.Find(jobs, "x264")
	var batch []cluster.Assignment
	if colocate {
		for i := 0; i < 4; i += 2 {
			batch = append(batch, cluster.Assignment{
				AgentA: i, AgentB: i + 1, JobA: swapt, JobB: x264,
			})
		}
	} else {
		for i := 0; i < 4; i++ {
			job := swapt
			if i%2 == 1 {
				job = x264
			}
			batch = append(batch, cluster.Assignment{AgentA: i, AgentB: -1, JobA: job})
		}
	}
	machines := len(batch)
	cl, err := cluster.New(machines, cmp)
	if err != nil {
		t.Fatal(err)
	}
	return machines, cl.Dispatch(batch)
}

func TestAccountBasics(t *testing.T) {
	machines, results := dispatchPairsAndSolos(t, true)
	rep, err := Account(DefaultServer(), machines, results)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EnergyJ <= 0 || rep.EnergyPerJobJ <= 0 {
		t.Errorf("report = %+v", rep)
	}
	if rep.MeanUtilization <= 0 || rep.MeanUtilization > 1 {
		t.Errorf("utilization = %v", rep.MeanUtilization)
	}
	// Sanity: energy at least the idle floor over the makespan.
	floor := DefaultServer().IdleWatts * float64(machines) * rep.MakespanS
	if rep.EnergyJ < floor {
		t.Errorf("energy %v below idle floor %v", rep.EnergyJ, floor)
	}
}

func TestAccountValidation(t *testing.T) {
	if _, err := Account(ServerModel{}, 1, nil); err == nil {
		t.Error("invalid model accepted")
	}
	if _, err := Account(DefaultServer(), 0, nil); err == nil {
		t.Error("zero machines accepted")
	}
	rep, err := Account(DefaultServer(), 1, nil)
	if err != nil || rep.EnergyJ != 0 {
		t.Errorf("empty results: %+v err=%v", rep, err)
	}
}

func TestColocationSavesEnergy(t *testing.T) {
	// The paper's motivating claim: colocating halves the machines for
	// the same work and cuts energy per job, even though pairs run a bit
	// slower.
	coloMachines, coloResults := dispatchPairsAndSolos(t, true)
	soloMachines, soloResults := dispatchPairsAndSolos(t, false)
	cmp, err := Compare(DefaultServer(), coloMachines, coloResults,
		soloMachines, soloResults)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.SavingsPct <= 10 {
		t.Errorf("colocation savings = %.1f%%, want substantial", cmp.SavingsPct)
	}
	if cmp.Colocated.EnergyPerJobJ >= cmp.Solo.EnergyPerJobJ {
		t.Errorf("colocated energy/job %v should beat solo %v",
			cmp.Colocated.EnergyPerJobJ, cmp.Solo.EnergyPerJobJ)
	}
	if math.IsNaN(cmp.SavingsPct) {
		t.Error("NaN savings")
	}
}
