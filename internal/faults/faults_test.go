package faults

import (
	"bufio"
	"errors"
	"net"
	"reflect"
	"testing"
	"time"

	"cooper/internal/telemetry"
)

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config invalid: %v", err)
	}
	if err := Hostile(1).Validate(); err != nil {
		t.Errorf("hostile config invalid: %v", err)
	}
	if err := (Config{DropProb: 1.5}).Validate(); err == nil {
		t.Error("DropProb > 1 accepted")
	}
	if err := (Config{DropProb: -0.1}).Validate(); err == nil {
		t.Error("negative probability accepted")
	}
	if err := (Config{DropProb: 0.5, DupProb: 0.3, StallProb: 0.3}).Validate(); err == nil {
		t.Error("per-message probabilities summing past 1 accepted")
	}
}

func TestNilPlanAndInjectorAreNoOps(t *testing.T) {
	var p *Plan
	if in := p.Injector(3); in != nil {
		t.Errorf("nil plan injector = %v, want nil", in)
	}
	if got := p.CrashesDue(0); got != nil {
		t.Errorf("nil plan crashes = %v", got)
	}
	p.RecordCrash()
	p.RecordRejoin()
	if cfg := p.Config(); !reflect.DeepEqual(cfg, Config{}) {
		t.Errorf("nil plan config = %+v", cfg)
	}

	var in *Injector
	if in.FailConnect() {
		t.Error("nil injector fails connects")
	}
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if got := in.Wrap(c1); got != c1 {
		t.Error("nil injector wrapped the conn")
	}
}

func TestInjectorStreamsAreDeterministicAndIndependent(t *testing.T) {
	cfg := Config{Seed: 42, DropProb: 0.3, DupProb: 0.2, StallProb: 0.2, ResetProb: 0.1}
	seq := func(key int64, n int) []action {
		p := NewPlan(cfg, nil, nil)
		in := p.Injector(key)
		out := make([]action, n)
		for i := range out {
			out[i] = in.writeAction()
		}
		return out
	}
	a := seq(1, 64)
	b := seq(1, 64)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed and key produced different fault sequences")
	}
	if reflect.DeepEqual(a, seq(2, 64)) {
		t.Error("distinct keys produced identical fault sequences")
	}

	// Reconnecting under the same key continues the stream rather than
	// restarting it: the second half drawn from a reused injector equals
	// the tail of one continuous draw.
	p := NewPlan(cfg, nil, nil)
	first := make([]action, 32)
	for i := range first {
		first[i] = p.Injector(7).writeAction()
	}
	second := make([]action, 32)
	for i := range second {
		second[i] = p.Injector(7).writeAction()
	}
	if got := append(first, second...); !reflect.DeepEqual(got, seq(7, 64)) {
		t.Error("injector reuse restarted the fault stream")
	}
}

func TestFailConnectCountsAndFires(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := NewPlan(Config{Seed: 1, ConnectFailProb: 1}, reg, nil)
	in := p.Injector(0)
	for i := 0; i < 3; i++ {
		if !in.FailConnect() {
			t.Fatal("ConnectFailProb=1 did not fail")
		}
	}
	if got := reg.Snapshot().Counter("fault.injected.connect_fail"); got != 3 {
		t.Errorf("connect_fail counter = %d, want 3", got)
	}
	p2 := NewPlan(Config{Seed: 1}, nil, nil)
	if p2.Injector(0).FailConnect() {
		t.Error("ConnectFailProb=0 failed a connect")
	}
}

func TestWrapDropAndDup(t *testing.T) {
	reg := telemetry.NewRegistry()
	// Drop then dup then clean: probabilities 1 select deterministically.
	dropPlan := NewPlan(Config{Seed: 3, DropProb: 1}, reg, nil)
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	wa := dropPlan.Wrap(0, a)
	if n, err := wa.Write([]byte("gone\n")); err != nil || n != 5 {
		t.Fatalf("dropped write = (%d, %v), want (5, nil)", n, err)
	}
	// The peer must see nothing: a read with a deadline times out.
	b.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	buf := make([]byte, 16)
	if n, err := b.Read(buf); err == nil {
		t.Fatalf("peer read %q after a dropped write", buf[:n])
	}

	dupPlan := NewPlan(Config{Seed: 3, DupProb: 1}, reg, nil)
	c, d := net.Pipe()
	defer c.Close()
	defer d.Close()
	wc := dupPlan.Wrap(0, c)
	go wc.Write([]byte("twice\n"))
	br := bufio.NewReader(d)
	for i := 0; i < 2; i++ {
		line, err := br.ReadString('\n')
		if err != nil || line != "twice\n" {
			t.Fatalf("dup copy %d = (%q, %v)", i, line, err)
		}
	}
	snap := reg.Snapshot()
	if snap.Counter("fault.injected.drop") != 1 || snap.Counter("fault.injected.dup") != 1 {
		t.Errorf("drop/dup counters = %d/%d, want 1/1",
			snap.Counter("fault.injected.drop"), snap.Counter("fault.injected.dup"))
	}
}

func TestWrapResetOnWrite(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := NewPlan(Config{Seed: 5, ResetProb: 1}, reg, nil)
	a, b := net.Pipe()
	defer b.Close()
	wa := p.Wrap(0, a)
	_, err := wa.Write([]byte("boom\n"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("reset write err = %v, want ErrInjected", err)
	}
	// The underlying conn is closed: further writes fail natively.
	if _, err := a.Write([]byte("x")); err == nil {
		t.Error("underlying conn still open after injected reset")
	}
	if got := reg.Snapshot().Counter("fault.injected.reset"); got != 1 {
		t.Errorf("reset counter = %d, want 1", got)
	}
}

func TestWrapStallUsesClockAndDelivers(t *testing.T) {
	reg := telemetry.NewRegistry()
	clock := NewFakeClock(time.Unix(0, 0))
	p := NewPlan(Config{Seed: 9, StallProb: 1, Stall: 3 * time.Second}, reg, clock)
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	wa := p.Wrap(0, a)

	// Write stall: the fake clock absorbs the delay instantly.
	go wa.Write([]byte("slow\n"))
	line, err := echoLineRead(t, b)
	if err != nil || line != "slow\n" {
		t.Fatalf("stalled write delivered (%q, %v)", line, err)
	}
	// Read stall: one decision per inbound line.
	go b.Write([]byte("inbound\n"))
	line, err = echoLineRead(t, wa)
	if err != nil || line != "inbound\n" {
		t.Fatalf("stalled read delivered (%q, %v)", line, err)
	}
	if clock.Slept() != 6*time.Second {
		t.Errorf("clock slept %v, want 6s (two 3s stalls)", clock.Slept())
	}
	if got := reg.Snapshot().Counter("fault.injected.stall"); got != 2 {
		t.Errorf("stall counter = %d, want 2", got)
	}
}

func echoLineRead(t *testing.T, c net.Conn) (string, error) {
	t.Helper()
	return bufio.NewReader(c).ReadString('\n')
}

func TestReadChunksByLineOneDecisionPerMessage(t *testing.T) {
	reg := telemetry.NewRegistry()
	// StallProb 1 with zero duration: every delivered line must draw
	// exactly one decision, however TCP fragments it.
	p := NewPlan(Config{Seed: 11, StallProb: 1}, reg, nil)
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	wa := p.Wrap(0, a)
	go func() {
		// Two messages delivered in three fragments.
		b.Write([]byte(`{"x":`))
		b.Write([]byte("1}\n{\"x\":2}"))
		b.Write([]byte("\n"))
	}()
	br := bufio.NewReader(wa)
	for i, want := range []string{"{\"x\":1}\n", "{\"x\":2}\n"} {
		line, err := br.ReadString('\n')
		if err != nil || line != want {
			t.Fatalf("line %d = (%q, %v), want %q", i, line, err, want)
		}
	}
	if got := reg.Snapshot().Counter("fault.injected.stall"); got != 2 {
		t.Errorf("stall decisions = %d, want exactly 2 (one per message)", got)
	}
}

func TestCrashScheduleAndCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := NewPlan(Config{Seed: 1, Crashes: []Crash{
		{Agent: 1, Epoch: 4},
		{Agent: 3, Epoch: 4, Rejoin: true},
		{Agent: 2, Epoch: 9},
	}}, reg, nil)
	due := p.CrashesDue(4)
	if len(due) != 2 || due[0].Agent != 1 || due[1].Agent != 3 || !due[1].Rejoin {
		t.Errorf("CrashesDue(4) = %+v", due)
	}
	if got := p.CrashesDue(5); got != nil {
		t.Errorf("CrashesDue(5) = %+v, want none", got)
	}
	p.RecordCrash()
	p.RecordCrash()
	p.RecordRejoin()
	snap := reg.Snapshot()
	if snap.Counter("fault.injected.crash") != 2 || snap.Counter("fault.injected.rejoin") != 1 {
		t.Errorf("crash/rejoin counters = %d/%d, want 2/1",
			snap.Counter("fault.injected.crash"), snap.Counter("fault.injected.rejoin"))
	}
}

// TestNewPlanRejectsInvalidConfig: a malformed Config would silently
// skew the cumulative-threshold fault selection, so NewPlan treats it as
// a programmer error and panics via Validate.
func TestNewPlanRejectsInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPlan accepted per-message probabilities summing past 1")
		}
	}()
	NewPlan(Config{Seed: 1, DropProb: 0.8, DupProb: 0.5}, nil, nil)
}

func TestNewPlanPreCreatesCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	NewPlan(Config{Seed: 1}, reg, nil)
	snap := reg.Snapshot()
	for _, name := range CounterNames() {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("counter %q not pre-created", name)
		}
	}
}

func TestFakeClock(t *testing.T) {
	c := NewFakeClock(time.Unix(100, 0))
	c.Sleep(2 * time.Second)
	c.Sleep(-time.Second) // ignored
	c.Advance(3 * time.Second)
	if got := c.Now(); !got.Equal(time.Unix(105, 0)) {
		t.Errorf("Now = %v, want t0+5s", got)
	}
	if got := c.Slept(); got != 2*time.Second {
		t.Errorf("Slept = %v, want 2s", got)
	}
	if RealClock().Now().IsZero() {
		t.Error("real clock returned zero time")
	}
}

// TestInjectionEvents covers the fault-kind → flight-recorder mapping
// the e2e soak can't: drops are excluded from the cooperd soak plan (a
// dropped epoch summary would park its agent across the barrier), so
// the drop event is asserted here, along with SetEvents retrofitting an
// injector that predates the ring.
func TestInjectionEvents(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := NewPlan(Config{Seed: 3, DropProb: 1}, reg, nil)
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	wa := p.Wrap(7, a) // injector created before the ring exists
	ring := telemetry.NewEventRing(8)
	p.SetEvents(ring) // must retrofit the existing key-7 injector
	if _, err := wa.Write([]byte("gone\n")); err != nil {
		t.Fatalf("dropped write: %v", err)
	}
	p.RecordCrash()
	p.RecordRejoin()

	events := ring.Events()
	if len(events) != 3 {
		t.Fatalf("events = %+v, want drop, crash, rejoin", events)
	}
	drop := events[0]
	if drop.Type != telemetry.EventFaultInjected || drop.Kind != "drop" || drop.Agent != 7 {
		t.Errorf("drop event = %+v, want fault_injected kind=drop agent=7", drop)
	}
	if events[1].Type != telemetry.EventFaultInjected || events[1].Kind != "crash" {
		t.Errorf("crash event = %+v", events[1])
	}
	if events[2].Type != telemetry.EventAgentRejoined {
		t.Errorf("rejoin event = %+v", events[2])
	}
	if got := reg.Snapshot().Counter("fault.injected.drop"); got != 1 {
		t.Errorf("fault.injected.drop = %d, want 1", got)
	}
}
