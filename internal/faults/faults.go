// Package faults is Cooper's deterministic fault-injection subsystem: a
// seeded Plan that wraps net.Conn to inject connect failures, read/write
// stalls, message drops and duplicates, and abrupt resets, plus a
// schedule of agent crashes and rejoins — the hostile-network regime the
// coordinator must keep clearing the matching market under.
//
// Determinism is the package's contract, mirroring internal/parallel:
// every injection decision is drawn from a per-key SplitMix64-derived RNG
// (parallel.SplitSeed(plan seed, key)), one draw per protocol message, so
// the same Plan seed over the same message sequence reproduces the same
// faults — and the same fault.injected.* telemetry counters — byte for
// byte across runs. The wire protocol is JSON lines; the conn wrapper
// exploits that framing to make injection message-granular: writes are
// one message per Write call, and reads are chunked line-by-line so a
// single decision covers a whole inbound message regardless of how TCP
// fragments it.
//
// Every injected fault is counted through internal/telemetry under
// fault.injected.{connect_fail,drop,dup,stall,reset,crash,rejoin}; the
// counters are pre-created by NewPlan so exposition snapshots list them
// even before the first injection.
package faults

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"cooper/internal/parallel"
	"cooper/internal/telemetry"
)

// ErrInjected marks a failure manufactured by the injector rather than
// the network. Test with errors.Is.
var ErrInjected = errors.New("faults: injected failure")

// Crash schedules one agent's abrupt death (and optional rejoin) at an
// epoch boundary. The harness driving the agents executes the schedule —
// the plan only holds and counts it — so crashes land at deterministic
// points in each agent's message stream.
type Crash struct {
	// Agent is the injector key of the agent to crash.
	Agent int64
	// Epoch is the 0-based scheduling epoch at which the crash fires.
	Epoch int
	// Rejoin re-dials the coordinator after the crash; the agent comes
	// back as a fresh registration under a new AgentID.
	Rejoin bool
}

// Config parameterizes a Plan. All probabilities are per-message (or
// per-connect for ConnectFailProb) in [0, 1]; ResetProb + DropProb +
// DupProb + StallProb must not exceed 1 since a single draw selects at
// most one fault per message.
type Config struct {
	// Seed drives every injection decision via per-key SplitSeed streams.
	Seed int64
	// ConnectFailProb fails a dial attempt before it touches the network.
	ConnectFailProb float64
	// DropProb silently discards an outbound message.
	DropProb float64
	// DupProb sends an outbound message twice.
	DupProb float64
	// StallProb delays a message (inbound or outbound) by Stall.
	StallProb float64
	// Stall is the injected delay; zero stalls are still counted.
	Stall time.Duration
	// ResetProb abruptly closes the connection mid-operation.
	ResetProb float64
	// Crashes schedules agent deaths and rejoins at epoch boundaries.
	Crashes []Crash
}

// Validate checks the probabilities are well-formed.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"ConnectFailProb", c.ConnectFailProb},
		{"DropProb", c.DropProb},
		{"DupProb", c.DupProb},
		{"StallProb", c.StallProb},
		{"ResetProb", c.ResetProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: %s = %v outside [0, 1]", p.name, p.v)
		}
	}
	if sum := c.ResetProb + c.DropProb + c.DupProb + c.StallProb; sum > 1 {
		return fmt.Errorf("faults: per-message fault probabilities sum to %v > 1", sum)
	}
	return nil
}

// Hostile returns the canonical chaos profile armed by the daemons'
// -chaos-seed flag: a network that drops a fifth of all traffic,
// duplicates and stalls some of the rest, and occasionally resets
// connections outright.
func Hostile(seed int64) Config {
	return Config{
		Seed:            seed,
		ConnectFailProb: 0.10,
		DropProb:        0.20,
		DupProb:         0.10,
		StallProb:       0.10,
		Stall:           2 * time.Millisecond,
		ResetProb:       0.02,
	}
}

// CounterNames lists every fault.injected.* counter a Plan records, in
// stable order, so exposition tests can assert the full set is present.
func CounterNames() []string {
	return []string{
		"fault.injected.connect_fail",
		"fault.injected.crash",
		"fault.injected.drop",
		"fault.injected.dup",
		"fault.injected.rejoin",
		"fault.injected.reset",
		"fault.injected.stall",
	}
}

// Plan is a seeded fault-injection plan shared by all the connections of
// one process. It hands out per-key Injectors whose RNG streams are
// independent, so concurrent connections cannot perturb each other's
// fault sequences. A nil *Plan disables injection: every method is a
// no-op and Wrap returns the conn unchanged.
type Plan struct {
	cfg     Config
	clock   Clock
	metrics *telemetry.Registry
	events  *telemetry.EventRing

	mu  sync.Mutex
	inj map[int64]*Injector
}

// NewPlan builds a Plan. metrics may be nil (faults go uncounted); clock
// nil means RealClock. The fault.injected.* counters are pre-created in
// the registry so snapshots expose them at zero. An invalid Config is a
// programmer error and panics: a malformed plan would silently skew the
// cumulative-threshold fault selection, exactly what Validate guards.
func NewPlan(cfg Config, metrics *telemetry.Registry, clock Clock) *Plan {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if clock == nil {
		clock = RealClock()
	}
	for _, name := range CounterNames() {
		metrics.Counter(name)
	}
	return &Plan{cfg: cfg, clock: clock, metrics: metrics, inj: make(map[int64]*Injector)}
}

// SetEvents attaches a flight-recorder ring: every injected fault is
// then also recorded as a typed fault_injected event (and every rejoin
// as agent_rejoined) alongside its counter. Call before the first
// Injector is created — injectors capture the ring at creation. Nil
// plans and nil rings are no-ops.
func (p *Plan) SetEvents(ev *telemetry.EventRing) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.events = ev
	for _, in := range p.inj {
		in.mu.Lock()
		in.events = ev
		in.mu.Unlock()
	}
}

// Config returns the plan's configuration (zero value for a nil plan).
func (p *Plan) Config() Config {
	if p == nil {
		return Config{}
	}
	return p.cfg
}

// Injector returns the plan's injector for key, creating it on first use
// with an RNG seeded by SplitSeed(plan seed, key). The same key always
// returns the same injector, so an agent that reconnects continues its
// fault stream where it left off. Nil plans return a nil (no-op)
// injector.
func (p *Plan) Injector(key int64) *Injector {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	in, ok := p.inj[key]
	if !ok {
		in = &Injector{
			key:     key,
			cfg:     p.cfg,
			clock:   p.clock,
			metrics: p.metrics,
			events:  p.events,
			rng:     rand.New(rand.NewSource(parallel.SplitSeed(p.cfg.Seed, key))),
		}
		p.inj[key] = in
	}
	return in
}

// Wrap is shorthand for Injector(key).Wrap(c).
func (p *Plan) Wrap(key int64, c net.Conn) net.Conn {
	return p.Injector(key).Wrap(c)
}

// CrashesDue returns the crash events scheduled for the given epoch.
func (p *Plan) CrashesDue(epoch int) []Crash {
	if p == nil {
		return nil
	}
	var due []Crash
	for _, cr := range p.cfg.Crashes {
		if cr.Epoch == epoch {
			due = append(due, cr)
		}
	}
	return due
}

// RecordCrash counts one executed scheduled crash.
func (p *Plan) RecordCrash() {
	if p == nil {
		return
	}
	p.metrics.Counter("fault.injected.crash").Inc()
	p.mu.Lock()
	ev := p.events
	p.mu.Unlock()
	ev.Record(telemetry.Event{Type: telemetry.EventFaultInjected,
		Epoch: -1, Agent: -1, Partner: -1, Kind: "crash"})
}

// RecordRejoin counts one executed scheduled rejoin.
func (p *Plan) RecordRejoin() {
	if p == nil {
		return
	}
	p.metrics.Counter("fault.injected.rejoin").Inc()
	p.mu.Lock()
	ev := p.events
	p.mu.Unlock()
	ev.Record(telemetry.Event{Type: telemetry.EventAgentRejoined,
		Epoch: -1, Agent: -1, Partner: -1, Kind: "rejoin"})
}

// Injector draws fault decisions for one connection key. All methods are
// nil-safe no-ops so call sites need no guards when injection is off.
type Injector struct {
	key     int64
	cfg     Config
	clock   Clock
	metrics *telemetry.Registry

	mu     sync.Mutex
	events *telemetry.EventRing // guarded by mu (SetEvents may retrofit it)
	rng    *rand.Rand
	draws  int64
}

func (in *Injector) draw() float64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.draws++
	return in.rng.Float64()
}

// Draws reports how many decisions this injector has drawn so far. Two
// runs of the same plan must show the same per-key draw counts at the
// same protocol points; comparing them localizes a determinism leak to a
// key and an epoch.
func (in *Injector) Draws() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.draws
}

func (in *Injector) count(kind string) {
	in.metrics.Counter("fault.injected." + kind).Inc()
	in.mu.Lock()
	ev := in.events
	in.mu.Unlock()
	ev.Record(telemetry.Event{Type: telemetry.EventFaultInjected,
		Epoch: -1, Agent: int(in.key), Partner: -1, Kind: kind})
}

// Float64 exposes the injector's RNG stream for auxiliary randomness
// (e.g. deterministic backoff jitter in tests).
func (in *Injector) Float64() float64 {
	if in == nil {
		return 0
	}
	return in.draw()
}

// FailConnect decides whether the next dial attempt should fail before
// touching the network. Exactly one draw per call.
func (in *Injector) FailConnect() bool {
	if in == nil {
		return false
	}
	if in.draw() < in.cfg.ConnectFailProb {
		in.count("connect_fail")
		return true
	}
	return false
}

type action int

const (
	actNone action = iota
	actDrop
	actDup
	actStall
	actReset
)

// writeAction draws one per-message decision for an outbound message.
// Cumulative thresholds keep it to a single draw: reset, then drop, then
// dup, then stall, else clean.
func (in *Injector) writeAction() action {
	if in == nil {
		return actNone
	}
	r := in.draw()
	c := in.cfg
	switch {
	case r < c.ResetProb:
		in.count("reset")
		return actReset
	case r < c.ResetProb+c.DropProb:
		in.count("drop")
		return actDrop
	case r < c.ResetProb+c.DropProb+c.DupProb:
		in.count("dup")
		return actDup
	case r < c.ResetProb+c.DropProb+c.DupProb+c.StallProb:
		in.count("stall")
		return actStall
	}
	return actNone
}

// readAction draws one per-message decision for an inbound message:
// reset, then stall, else clean. Drops and dups are sender-side faults.
func (in *Injector) readAction() action {
	if in == nil {
		return actNone
	}
	r := in.draw()
	c := in.cfg
	switch {
	case r < c.ResetProb:
		in.count("reset")
		return actReset
	case r < c.ResetProb+c.StallProb:
		in.count("stall")
		return actStall
	}
	return actNone
}

// Wrap returns c with this injector's faults applied to every message
// crossing it. A nil injector returns c unchanged. The wrapper assumes a
// line-delimited protocol: each Write call is one message, and inbound
// bytes are chunked at newlines so one decision covers one message.
func (in *Injector) Wrap(c net.Conn) net.Conn {
	if in == nil {
		return c
	}
	return &conn{Conn: c, in: in, br: bufio.NewReader(c)}
}

type conn struct {
	net.Conn
	in      *Injector
	br      *bufio.Reader
	pending []byte
}

func (fc *conn) Read(p []byte) (int, error) {
	if len(fc.pending) == 0 {
		line, err := fc.br.ReadBytes('\n')
		if len(line) == 0 {
			return 0, err
		}
		if err == nil {
			// A complete message arrived: one injection decision for the
			// whole line. Partial lines (broken peer) pass through without
			// a draw so a torn connection cannot skew the fault stream.
			switch fc.in.readAction() {
			case actStall:
				fc.in.clock.Sleep(fc.in.cfg.Stall)
			case actReset:
				fc.Conn.Close()
				return 0, fmt.Errorf("faults: read reset on key %d: %w", fc.in.key, ErrInjected)
			}
		}
		fc.pending = line
	}
	n := copy(p, fc.pending)
	fc.pending = fc.pending[n:]
	return n, nil
}

func (fc *conn) Write(p []byte) (int, error) {
	switch fc.in.writeAction() {
	case actDrop:
		// The caller sees success; the peer sees silence.
		return len(p), nil
	case actDup:
		if n, err := fc.Conn.Write(p); err != nil {
			return n, err
		}
		if _, err := fc.Conn.Write(p); err != nil {
			return len(p), err
		}
		return len(p), nil
	case actStall:
		fc.in.clock.Sleep(fc.in.cfg.Stall)
	case actReset:
		fc.Conn.Close()
		return 0, fmt.Errorf("faults: write reset on key %d: %w", fc.in.key, ErrInjected)
	}
	return fc.Conn.Write(p)
}
