package faults

import (
	"sync"
	"time"
)

// Clock abstracts wall-clock reads and sleeps so that retry/backoff and
// stall-injection code can run against a fake clock in tests: a backoff
// ladder that would take seconds of real time completes instantly while
// still recording exactly how long it would have slept.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

type realClock struct{}

func (realClock) Now() time.Time        { return time.Now() }
func (realClock) Sleep(d time.Duration) { time.Sleep(d) }

// RealClock returns the process clock: time.Now and time.Sleep.
func RealClock() Clock { return realClock{} }

// FakeClock is a manually advanced Clock for tests. Sleep returns
// immediately, advancing the fake time and accumulating the total slept
// duration so tests can assert on a backoff schedule without waiting it
// out. Safe for concurrent use.
type FakeClock struct {
	mu    sync.Mutex
	now   time.Time
	slept time.Duration
}

// NewFakeClock returns a FakeClock starting at the given instant.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now returns the fake clock's current instant.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances the fake clock by d without blocking and records d in
// the slept total. Non-positive durations are ignored.
func (c *FakeClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	c.slept += d
}

// Advance moves the clock forward by d without counting it as sleep.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// Slept returns the total duration passed to Sleep so far.
func (c *FakeClock) Slept() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.slept
}
