package core

import (
	"time"

	"cooper/internal/arch"
	"cooper/internal/policy"
	"cooper/internal/recommend"
	"cooper/internal/telemetry"
	"cooper/internal/workload"
)

// MarketConfig groups the knobs of the colocation market itself: which
// policy clears it, the stability threshold agents assess against, and
// how the market is sharded at scale.
type MarketConfig struct {
	// Policy assigns colocations. Nil means StableMarriageRandom, the
	// paper's recommended policy.
	Policy policy.Policy
	// Alpha is the minimum performance gain for which an agent recommends
	// breaking away (and, in the sharded market, the minimum mutual gain
	// for a cross-shard refinement trade).
	Alpha float64
	// Shards splits the market into consistent-hash shards cleared in
	// parallel, with bounded cross-shard refinement reconciling the
	// boundaries (see internal/shard). Values <= 1 mean the single
	// unsharded market, which reproduces the classic pipeline exactly.
	Shards int
	// RefinementBudget caps cross-shard refinement rounds per epoch:
	// 0 means shard.DefaultRefinementBudget, negative disables
	// refinement. Ignored by the unsharded market.
	RefinementBudget int
	// Rematch enables the streaming market: StreamEpoch admits churn
	// mid-stream and repairs the prior epoch's matching incrementally
	// (see internal/rematch) instead of re-clearing from scratch.
	Rematch bool
	// RematchTopK bounds the preference candidates each churned agent
	// pulls into its repair neighborhood (<= 0 means
	// rematch.DefaultTopK).
	RematchTopK int
	// ChurnThreshold is the fraction of the population whose cumulative
	// churn since the last full clear forces the next streaming epoch to
	// re-match from scratch (<= 0 means rematch.DefaultChurnThreshold).
	ChurnThreshold float64
}

// PipelineConfig groups the epoch pipeline's execution knobs: worker
// budget, profiling and prediction configuration, and epoch deadlines.
type PipelineConfig struct {
	// Workers bounds the worker pool the pipeline's fan-out phases share
	// (profiling campaign, matrix completion, oracle computation, epoch
	// assessment, per-shard matching). <= 0 means GOMAXPROCS; 1 forces
	// the serial pipeline. Any value produces bit-identical results —
	// parallelism never perturbs the simulation.
	Workers int
	// SampleFraction is the share of the colocation space profiled
	// offline. Zero means 0.25, the paper's operating point.
	SampleFraction float64
	// Predictor completes the sparse penalty matrix. Zero value fields
	// mean recommend.Default().
	Predictor recommend.Predictor
	// Oracle skips profiling and prediction, giving the policy exact
	// analytic penalties — the "oracular knowledge" configuration the
	// paper compares collaborative filtering against.
	Oracle bool
	// Penalties, when non-nil, supplies the completed job-level penalty
	// matrix directly (len(Catalog) x len(Catalog)) and skips the
	// profiling campaign and predictor entirely — for daemons that load
	// measurements from a profile database out of band.
	Penalties [][]float64
	// EpochTimeout, when positive, bounds each RunEpoch's wall-clock
	// time: the epoch's context is cut over to a deadline and a run that
	// blows it returns an error wrapping ErrCanceled instead of stalling
	// the caller's scheduling loop (cooperd -epoch-timeout).
	EpochTimeout time.Duration
}

// ObserveConfig groups the observability attachments.
type ObserveConfig struct {
	// Telemetry, when non-nil, receives phase spans, pipeline metrics,
	// and flight-recorder events from every layer the framework touches.
	// Nil (the default) disables observability at near-zero cost.
	Telemetry *telemetry.Telemetry
}

// Config configures a Framework, grouped by concern: the simulated
// hardware, the market being cleared, the pipeline clearing it, and what
// is observed along the way. The zero value is a runnable default (the
// paper's catalog, machines, policy, and operating point).
type Config struct {
	// Machine is the CMP model shared by every node. Zero value means
	// arch.DefaultCMP().
	Machine arch.CMP
	// Machines is the cluster size in CMPs. Zero means 10 (the paper's
	// five dual-socket nodes).
	Machines int
	// Seed drives all randomness (profiling noise, sampling, SMR
	// partitions, per-shard RNG streams).
	Seed int64
	// Sim overrides the profiling simulation config (zero value uses a
	// short, noisy default suitable for experiments).
	Sim arch.SimConfig
	// Catalog overrides the built-in Table I catalog with a custom one
	// (built via workload.BuildCatalog or workload.LoadCatalog against
	// the same Machine). Nil uses the paper's 20 jobs.
	Catalog []workload.Job

	Market   MarketConfig
	Pipeline PipelineConfig
	Observe  ObserveConfig
}

func (c Config) withDefaults() Config {
	if c.Machine.Cores == 0 {
		c.Machine = arch.DefaultCMP()
	}
	if c.Machines == 0 {
		c.Machines = 10
	}
	if c.Market.Policy == nil {
		c.Market.Policy = policy.StableMarriageRandom{}
	}
	if c.Pipeline.SampleFraction == 0 {
		c.Pipeline.SampleFraction = 0.25
	}
	if c.Pipeline.Predictor == (recommend.Predictor{}) {
		c.Pipeline.Predictor = recommend.Default()
	}
	if c.Sim == (arch.SimConfig{}) {
		// Profiling runs long enough to average out phase behaviour, as
		// the paper's minutes-long profiled executions do.
		c.Sim = arch.SimConfig{DurationS: 30, StepS: 1, PhaseNoise: 0.05, PhaseCorr: 0.6}
	}
	return c
}

// Config converts the legacy flat Options into the grouped Config. The
// two describe identical frameworks; Options simply predates the
// Market/Pipeline/Observe grouping (and so has no shard knobs).
func (o Options) Config() Config {
	return Config{
		Machine:  o.Machine,
		Machines: o.Machines,
		Seed:     o.Seed,
		Sim:      o.Sim,
		Catalog:  o.Catalog,
		Market: MarketConfig{
			Policy: o.Policy,
			Alpha:  o.Alpha,
		},
		Pipeline: PipelineConfig{
			Workers:        o.Workers,
			SampleFraction: o.SampleFraction,
			Predictor:      o.Predictor,
			Oracle:         o.Oracle,
			Penalties:      o.Penalties,
			EpochTimeout:   o.EpochTimeout,
		},
		Observe: ObserveConfig{Telemetry: o.Telemetry},
	}
}
