package core

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"cooper/internal/agent"
	"cooper/internal/cluster"
	"cooper/internal/matching"
	"cooper/internal/policy"
	"cooper/internal/profiler"
	"cooper/internal/rematch"
	"cooper/internal/shard"
	"cooper/internal/telemetry"
	"cooper/internal/workload"
)

// Churn is one streaming epoch's population change: jobs arriving and
// agent IDs leaving. IDs are the stable identities EpochReport.AgentIDs
// carries — they survive across epochs as positions shift.
type Churn struct {
	// Join lists arriving jobs; each must name a catalog job.
	Join []workload.Job
	// Depart lists the stable IDs of agents leaving the market.
	Depart []int
}

// RematchSummary describes how a streaming epoch absorbed its churn.
type RematchSummary struct {
	// Mode is "repair" (incremental neighborhood repair) or "full"
	// (churn since the last full clear exceeded the threshold and the
	// market re-matched from scratch).
	Mode string
	// Joined and Departed count the epoch's churn.
	Joined   int
	Departed int
	// Neighborhood is how many agents' proposals were re-run (zero in
	// full mode), Changed how many ended with a different partner than
	// the prior epoch.
	Neighborhood int
	Changed      int
}

// streamState is the Framework's per-stream ledger, created lazily on
// the first StreamEpoch call.
type streamState struct {
	mu     sync.Mutex
	ledger rematch.Ledger
}

// rematchPayload is the rematch_round event's Data: the churn the round
// absorbed, in event-log agent IDs.
type rematchPayload struct {
	Joined       []int `json:"joined"`
	Departed     []int `json:"departed"`
	Neighborhood []int `json:"neighborhood,omitempty"`
}

// StreamEpoch plays one round of the streaming market: the churn's
// departures and arrivals are folded into the live population, and the
// prior epoch's stable matching is repaired incrementally around them —
// or re-matched from scratch when cumulative churn since the last full
// clear exceeds Market.ChurnThreshold. Requires Market.Rematch (the
// facade's WithRematch).
func (f *Framework) StreamEpoch(churn Churn) (*EpochReport, error) {
	return f.StreamEpochContext(context.Background(), churn)
}

// StreamEpochContext is StreamEpoch with cancellation. Unlike RunEpoch,
// consecutive calls share ledger state (the live population and its
// last matching), so calls must not overlap; they are serialized
// internally.
func (f *Framework) StreamEpochContext(ctx context.Context, churn Churn) (*EpochReport, error) {
	if !f.cfg.Market.Rematch {
		return nil, fmt.Errorf("core: streaming market disabled; enable Market.Rematch (cooper.WithRematch)")
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, ErrClosed
	}
	f.inflight.Add(1)
	if f.stream == nil {
		f.stream = &streamState{}
	}
	st := f.stream
	f.mu.Unlock()
	defer f.inflight.Done()
	st.mu.Lock()
	defer st.mu.Unlock()

	if f.cfg.Pipeline.EpochTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, f.cfg.Pipeline.EpochTimeout)
		defer cancel()
	}

	// Arriving jobs must be catalog jobs: the ledger tracks matrix rows.
	jobRow := make(map[string]int, len(f.catalog))
	for i, j := range f.catalog {
		jobRow[j.Name] = i
	}
	joinRows := make([]int, len(churn.Join))
	for i, j := range churn.Join {
		row, ok := jobRow[j.Name]
		if !ok {
			return nil, fmt.Errorf("core: joining job %q not in catalog", j.Name)
		}
		joinRows[i] = row
	}
	delta, err := st.ledger.Apply(joinRows, churn.Depart)
	if err != nil {
		return nil, err
	}
	n := len(delta.Agents)
	if n == 0 {
		return nil, fmt.Errorf("core: empty population after churn")
	}
	full := st.ledger.FullDue(f.cfg.Market.ChurnThreshold)
	if err := ctx.Err(); err != nil {
		return nil, wrapCanceled(ctx, err)
	}

	// The streaming population: agent i runs its ledger job class.
	pop := workload.Population{Jobs: make([]workload.Job, n)}
	ids := make([]int, n)
	jobIdx := make([]int, n)
	for i, a := range delta.Agents {
		pop.Jobs[i] = f.catalog[a.Job]
		ids[i] = a.ID
		jobIdx[i] = a.Job
	}
	pen := func(i, j int) float64 { return f.predicted[jobIdx[i]][jobIdx[j]] }

	// Keyed by epoch index like the batch path, so streaming and batch
	// runs over the same seed produce the same epoch span IDs.
	epochIdx := int(f.epochSeq.Add(1) - 1)
	epoch := f.tel.PhaseKeyed(nil, "epoch", int64(epochIdx))
	epoch.SetAttr("agents", n)
	epoch.SetAttr("stream", true)
	f.tel.RecordIn(epoch, telemetry.Event{
		Type: telemetry.EventEpochStart, Epoch: epochIdx,
		Agent: -1, Partner: -1, Value: float64(n),
	})
	if f.tel.EventRing() != nil {
		// Streaming snapshots carry the stable IDs, so the roster an
		// auditor derives matches the IDs rematch_round payloads name.
		jobs := make([]string, n)
		for i, job := range pop.Jobs {
			jobs[i] = job.Name
		}
		catalog := make([]string, len(f.catalog))
		for i, job := range f.catalog {
			catalog[i] = job.Name
		}
		f.tel.RecordIn(epoch, telemetry.EpochSnapshot{
			Epoch: epochIdx, Source: telemetry.SnapshotSourceCore,
			Policy: f.cfg.Market.Policy.Name(), Seed: f.cfg.Seed, Alpha: -1,
			Shards: reportedShards(f.cfg.Market.Shards),
			Kernel: f.kernel,
			Agents: ids, Jobs: jobs,
			Catalog: catalog, Matrix: f.predicted,
		}.Event())
	}

	payload := rematchPayload{
		Joined:   make([]int, 0, len(delta.Joined)),
		Departed: append([]int{}, delta.Departed...),
	}
	for _, i := range delta.Joined {
		payload.Joined = append(payload.Joined, ids[i])
	}
	summary := &RematchSummary{Joined: len(delta.Joined), Departed: len(delta.Departed)}
	reg := f.tel.Registry()

	emitRound := func(kind string) {
		data, _ := json.Marshal(payload)
		f.tel.RecordIn(epoch, telemetry.Event{
			Type: telemetry.EventRematchRound, Epoch: epochIdx,
			Agent: -1, Partner: -1, Kind: kind, Round: 0,
			Value: float64(n), Data: string(data),
		})
	}

	var (
		match matching.Matching
		mres  *shard.Result
	)
	if full {
		summary.Mode = "full"
		emitRound("full")
		matchSpan := f.tel.Phase(epoch, "match")
		if f.cfg.Market.Shards > 1 {
			mk := &shard.Market{
				Shards:              f.cfg.Market.Shards,
				RefinementBudget:    f.cfg.Market.RefinementBudget,
				Policy:              f.cfg.Market.Policy,
				Alpha:               f.cfg.Market.Alpha,
				Workers:             f.pool.Workers(),
				Seed:                f.rng.Int63(),
				Epoch:               epochIdx,
				IDs:                 ids,
				Tel:                 f.tel,
				Span:                matchSpan,
				SkipRecommendations: true,
			}
			mres, err = mk.Clear(ctx, pop.Jobs, jobIdx, f.predicted)
			if err != nil {
				return nil, wrapCanceled(ctx, err)
			}
			match = mres.Match
		} else {
			predD, err := profiler.ExpandToAgents(f.predicted, f.catalog, pop)
			if err != nil {
				return nil, err
			}
			bw := make([]float64, n)
			for i, j := range pop.Jobs {
				bw[i] = j.BandwidthGBps
			}
			match, err = f.cfg.Market.Policy.Assign(predD, policy.Context{
				BandwidthGBps: bw, Rand: f.rng, Metrics: reg,
			})
			if err != nil {
				return nil, err
			}
		}
		matchSpan.SetAttr("policy", f.cfg.Market.Policy.Name())
		matchSpan.SetAttr("mode", "full")
		f.tel.End(matchSpan)
		if err := st.ledger.Commit(match, true); err != nil {
			return nil, err
		}
		reg.Counter("rematch.fulls").Inc()
	} else {
		summary.Mode = "repair"
		matchSpan := f.tel.Phase(epoch, "match")
		var nbhd, changed []int
		if f.cfg.Market.Shards > 1 {
			mk := &shard.Market{
				Shards:  f.cfg.Market.Shards,
				Policy:  f.cfg.Market.Policy,
				Alpha:   f.cfg.Market.Alpha,
				Workers: f.pool.Workers(),
				Seed:    f.rng.Int63(),
				Epoch:   epochIdx,
				IDs:     ids,
				Tel:     f.tel,
				Span:    matchSpan,
			}
			rres, err := mk.Repair(ctx, pop.Jobs, jobIdx, f.predicted, delta.Prev, delta.Dirty, f.cfg.Market.RematchTopK)
			if err != nil {
				return nil, wrapCanceled(ctx, err)
			}
			match, nbhd, changed = rres.Match, rres.Neighborhood, rres.Changed
		} else {
			bw := make([]float64, n)
			for i, j := range pop.Jobs {
				bw[i] = j.BandwidthGBps
			}
			rp := &rematch.Repairer{
				Policy:  f.cfg.Market.Policy,
				TopK:    f.cfg.Market.RematchTopK,
				Rand:    f.rng,
				Metrics: reg,
			}
			rres, err := rp.Repair(delta, pen, bw)
			if err != nil {
				return nil, err
			}
			match, nbhd, changed = rres.Match, rres.Neighborhood, rres.Changed
		}
		matchSpan.SetAttr("policy", f.cfg.Market.Policy.Name())
		matchSpan.SetAttr("mode", "repair")
		matchSpan.SetAttr("neighborhood", len(nbhd))
		matchSpan.SetAttr("changed", len(changed))
		f.tel.End(matchSpan)
		summary.Neighborhood = len(nbhd)
		summary.Changed = len(changed)
		payload.Neighborhood = make([]int, 0, len(nbhd))
		for _, i := range nbhd {
			payload.Neighborhood = append(payload.Neighborhood, ids[i])
		}
		emitRound("repair")
		if err := st.ledger.Commit(match, false); err != nil {
			return nil, err
		}
		reg.Counter("rematch.repairs").Inc()
	}
	reg.Counter("rematch.joined").Add(int64(summary.Joined))
	reg.Counter("rematch.departed").Add(int64(summary.Departed))

	if err := ctx.Err(); err != nil {
		return nil, wrapCanceled(ctx, err)
	}
	assess := f.tel.Phase(epoch, "assess")
	// Streaming epochs always use the bounded class-bucket assessment:
	// exact Action and ExpectedGain, bounded partner lists, O(n·classes)
	// instead of the O(n²) message exchange — repair epochs must never
	// pay quadratic work.
	recs := rematch.Recommendations(jobIdx, f.predicted, match, f.cfg.Market.Alpha, 0)

	trueP, err := policy.TruePenalties(ctx, f.cfg.Machine, pop.Jobs, match,
		f.pool.Workers(), f.cache)
	if err != nil {
		return nil, wrapCanceled(ctx, err)
	}

	rep := &EpochReport{
		Population:       pop,
		Match:            match,
		AgentIDs:         ids,
		Rematch:          summary,
		PredictedPenalty: make([]float64, n),
		TruePenalty:      trueP,
		Recommendations:  recs,
		BlockingPairs:    agent.BlockingPairsFromRecommendations(recs),
	}
	if mres != nil {
		rep.Shards = f.cfg.Market.Shards
		rep.RefinementRounds = mres.RefinementRounds
		rep.RefinementTrades = mres.RefinementTrades
	} else if f.cfg.Market.Shards > 1 {
		rep.Shards = f.cfg.Market.Shards
	}
	var meanPred float64
	for i, j := range match {
		if j != matching.Unmatched {
			rep.PredictedPenalty[i] = pen(i, j)
			meanPred += pen(i, j)
		}
		switch {
		case j == matching.Unmatched:
			f.tel.RecordIn(epoch, telemetry.Event{
				Type: telemetry.EventAgentUnpaired, Epoch: epochIdx,
				Agent: ids[i], Partner: -1, Job: pop.Jobs[i].Name,
			})
		case i < j:
			f.tel.RecordIn(epoch, telemetry.Event{
				Type: telemetry.EventPairMatched, Epoch: epochIdx,
				Agent: ids[i], Partner: ids[j], Job: pop.Jobs[i].Name,
				Predicted: pen(i, j), True: trueP[i],
			})
		}
	}
	meanPred /= float64(n)
	assess.SetAttr("breakaways", rep.BreakAwayCount())
	assess.SetAttr("blocking_pairs", len(rep.BlockingPairs))
	f.tel.End(assess)

	if err := ctx.Err(); err != nil {
		return nil, wrapCanceled(ctx, err)
	}
	dispatch := f.tel.Phase(epoch, "dispatch")
	f.cluster.Reset()
	var batch []cluster.Assignment
	for i, j := range match {
		switch {
		case j == matching.Unmatched:
			batch = append(batch, cluster.Assignment{
				AgentA: i, AgentB: -1, JobA: pop.Jobs[i],
			})
		case i < j:
			batch = append(batch, cluster.Assignment{
				AgentA: i, AgentB: j, JobA: pop.Jobs[i], JobB: pop.Jobs[j],
			})
		}
	}
	results := f.cluster.Dispatch(batch)
	rep.Cluster = f.cluster.Summarize(results)
	dispatch.SetAttr("colocations", len(batch))
	f.tel.End(dispatch)
	f.tel.End(epoch)

	if reg != nil {
		reg.Counter("epoch.count").Inc()
		reg.Counter("epoch.agents").Add(int64(n))
		reg.Counter("epoch.breakaways").Add(int64(rep.BreakAwayCount()))
		reg.Counter("epoch.blocking_pairs").Add(int64(len(rep.BlockingPairs)))
		reg.Gauge("epoch.mean_penalty").Set(rep.MeanTruePenalty())
		h := reg.Histogram("epoch.penalty", telemetry.PenaltyBuckets())
		for _, p := range rep.TruePenalty {
			h.Observe(p)
		}
	}
	f.tel.RecordIn(epoch, telemetry.Event{
		Type: telemetry.EventCacheHitRate, Epoch: epochIdx,
		Agent: -1, Partner: -1, Value: f.cache.HitRate(),
	})
	f.tel.RecordIn(epoch, telemetry.Event{
		Type: telemetry.EventEpochEnd, Epoch: epochIdx,
		Agent: -1, Partner: -1, Value: rep.MeanTruePenalty(),
		Predicted: meanPred,
	})
	return rep, nil
}
