// Package core wires Cooper's components into the end-to-end framework of
// the paper's Figure 6: the system profiler measures standalone and
// sampled colocated runs; the preference predictor completes the sparse
// penalty matrix; a colocation policy matches agents; agents assess their
// assignments and recommend strategic action; and the job dispatcher
// sends participating colocations to the cluster.
package core

import (
	"fmt"
	"math/rand"

	"cooper/internal/agent"
	"cooper/internal/arch"
	"cooper/internal/cachesim"
	"cooper/internal/cluster"
	"cooper/internal/matching"
	"cooper/internal/policy"
	"cooper/internal/profiler"
	"cooper/internal/recommend"
	"cooper/internal/telemetry"
	"cooper/internal/workload"
)

// Options configures a Framework.
type Options struct {
	// Machine is the CMP model shared by every node. Zero value means
	// arch.DefaultCMP().
	Machine arch.CMP
	// Machines is the cluster size in CMPs. Zero means 10 (the paper's
	// five dual-socket nodes).
	Machines int
	// Policy assigns colocations. Nil means StableMarriageRandom, the
	// paper's recommended policy.
	Policy policy.Policy
	// SampleFraction is the share of the colocation space profiled
	// offline. Zero means 0.25, the paper's operating point.
	SampleFraction float64
	// Predictor completes the sparse penalty matrix. Zero value fields
	// mean recommend.Default().
	Predictor recommend.Predictor
	// Alpha is the minimum performance gain for which an agent recommends
	// breaking away.
	Alpha float64
	// Oracle skips profiling and prediction, giving the policy exact
	// analytic penalties — the "oracular knowledge" configuration the
	// paper compares collaborative filtering against.
	Oracle bool
	// Seed drives all randomness (profiling noise, sampling, SMR
	// partitions).
	Seed int64
	// Sim overrides the profiling simulation config (zero value uses a
	// short, noisy default suitable for experiments).
	Sim arch.SimConfig
	// Catalog overrides the built-in Table I catalog with a custom one
	// (built via workload.BuildCatalog or workload.LoadCatalog against
	// the same Machine). Nil uses the paper's 20 jobs.
	Catalog []workload.Job
	// Telemetry, when non-nil, receives phase spans and pipeline metrics
	// from every layer the framework touches. Nil (the default) disables
	// observability at near-zero cost.
	Telemetry *telemetry.Telemetry
}

func (o Options) withDefaults() Options {
	if o.Machine.Cores == 0 {
		o.Machine = arch.DefaultCMP()
	}
	if o.Machines == 0 {
		o.Machines = 10
	}
	if o.Policy == nil {
		o.Policy = policy.StableMarriageRandom{}
	}
	if o.SampleFraction == 0 {
		o.SampleFraction = 0.25
	}
	if o.Predictor == (recommend.Predictor{}) {
		o.Predictor = recommend.Default()
	}
	if o.Sim == (arch.SimConfig{}) {
		// Profiling runs long enough to average out phase behaviour, as
		// the paper's minutes-long profiled executions do.
		o.Sim = arch.SimConfig{DurationS: 30, StepS: 1, PhaseNoise: 0.05, PhaseCorr: 0.6}
	}
	return o
}

// Framework is a ready-to-run Cooper instance: calibrated catalog,
// profiling database, completed preference model, and cluster.
type Framework struct {
	opts    Options
	catalog []workload.Job
	db      *profiler.Database
	cluster *cluster.Cluster

	predicted [][]float64 // job-level penalties as agents believe them
	truth     [][]float64 // job-level penalties from the analytic oracle
	iters     int         // predictor iterations used
	rng       *rand.Rand
	tel       *telemetry.Telemetry
}

// New builds a Framework: it calibrates the catalog, runs the offline
// profiling campaign, and trains the preference predictor.
func New(opts Options) (*Framework, error) {
	opts = opts.withDefaults()
	if err := opts.Machine.Validate(); err != nil {
		return nil, err
	}
	catalog := opts.Catalog
	if catalog == nil {
		var err error
		catalog, err = workload.Catalog(opts.Machine)
		if err != nil {
			return nil, err
		}
	}
	if len(catalog) == 0 {
		return nil, fmt.Errorf("core: empty catalog")
	}
	f := &Framework{
		opts:    opts,
		catalog: catalog,
		db:      profiler.NewDatabase(),
		rng:     rand.New(rand.NewSource(opts.Seed)),
		tel:     opts.Telemetry,
	}
	if f.tel != nil {
		// Route the model layers' package-level sinks into this registry.
		arch.SetMetrics(f.tel.Registry())
		cachesim.SetMetrics(f.tel.Registry())
	}
	var err error
	f.cluster, err = cluster.New(opts.Machines, opts.Machine)
	if err != nil {
		return nil, err
	}

	f.truth = profiler.DensePenalties(opts.Machine, catalog)
	if opts.Oracle {
		f.predicted = f.truth
		return f, nil
	}

	prof := profiler.New(opts.Machine, f.db, opts.Seed+1)
	prof.Sim = opts.Sim
	prof.Tel = f.tel
	if err := prof.Campaign(catalog, opts.SampleFraction); err != nil {
		return nil, err
	}
	sparse, err := profiler.PenaltyMatrix(f.db, catalog)
	if err != nil {
		return nil, err
	}
	predict := f.tel.Phase(nil, "predict")
	predict.SetAttr("sparsity", profiler.Sparsity(sparse))
	pred := opts.Predictor
	pred.Metrics = f.tel.Registry()
	f.predicted, f.iters, err = pred.Complete(sparse)
	if err != nil {
		return nil, err
	}
	predict.SetAttr("fill_iters", f.iters)
	f.tel.End(predict)
	return f, nil
}

// Catalog returns the calibrated 20-job catalog.
func (f *Framework) Catalog() []workload.Job { return f.catalog }

// Database returns the profiling database (empty in Oracle mode).
func (f *Framework) Database() *profiler.Database { return f.db }

// PredictedPenalties returns the completed job-level penalty matrix the
// agents believe.
func (f *Framework) PredictedPenalties() [][]float64 { return f.predicted }

// TruePenalties returns the oracle job-level penalty matrix.
func (f *Framework) TruePenalties() [][]float64 { return f.truth }

// PredictorIterations returns how many fill iterations the preference
// predictor used (0 in Oracle mode).
func (f *Framework) PredictorIterations() int { return f.iters }

// Telemetry returns the telemetry handle the framework was built with
// (nil when observability is disabled).
func (f *Framework) Telemetry() *telemetry.Telemetry { return f.tel }

// Snapshot copies the framework's metrics and span tree. With telemetry
// disabled it returns an empty snapshot, so callers need not branch.
func (f *Framework) Snapshot() telemetry.Snapshot { return f.tel.Snapshot() }

// PredictionAccuracy evaluates the paper's Equation 2 on this framework's
// predicted versus true job-level penalties.
func (f *Framework) PredictionAccuracy() (float64, error) {
	return recommend.PreferenceAccuracy(f.truth, f.predicted)
}

// SamplePopulation draws n agents from the catalog with the given mix.
func (f *Framework) SamplePopulation(n int, mix interface {
	Sample(*rand.Rand) float64
	Name() string
}) workload.Population {
	return workload.Sample(n, f.catalog, mix, f.rng)
}

// EpochReport is the outcome of one scheduling epoch.
type EpochReport struct {
	Population workload.Population
	Match      matching.Matching
	// PredictedPenalty and TruePenalty are per-agent disutilities under
	// the assignment, as predicted by agents and as the oracle knows
	// them.
	PredictedPenalty []float64
	TruePenalty      []float64
	// Recommendations are the agents' strategic assessments.
	Recommendations []agent.Recommendation
	// BlockingPairs are the mutual break-away opportunities agents
	// discovered (under their predicted preferences, with the
	// framework's alpha).
	BlockingPairs [][2]int
	// Cluster summarizes the dispatch of participating colocations.
	Cluster cluster.Report
}

// RunEpoch plays one round of the colocation game for the population:
// predict preferences, assign colocations, let agents assess them, and
// dispatch the work.
func (f *Framework) RunEpoch(pop workload.Population) (*EpochReport, error) {
	n := len(pop.Jobs)
	if n == 0 {
		return nil, fmt.Errorf("core: empty population")
	}
	epoch := f.tel.Phase(nil, "epoch")
	epoch.SetAttr("agents", n)
	predD, err := profiler.ExpandToAgents(f.predicted, f.catalog, pop)
	if err != nil {
		return nil, err
	}
	trueD, err := profiler.ExpandToAgents(f.truth, f.catalog, pop)
	if err != nil {
		return nil, err
	}
	bw := make([]float64, n)
	for i, j := range pop.Jobs {
		bw[i] = j.BandwidthGBps
	}

	reg := f.tel.Registry()
	matchSpan := f.tel.Phase(epoch, "match")
	preProposals := reg.Counter("match.proposals").Value()
	preRotations := reg.Counter("match.rotations").Value()
	match, err := f.opts.Policy.Assign(predD, policy.Context{
		BandwidthGBps: bw,
		Rand:          f.rng,
		Metrics:       reg,
	})
	if err != nil {
		return nil, err
	}
	matchSpan.SetAttr("policy", f.opts.Policy.Name())
	matchSpan.SetAttr("proposals", reg.Counter("match.proposals").Value()-preProposals)
	matchSpan.SetAttr("rotations", reg.Counter("match.rotations").Value()-preRotations)
	f.tel.End(matchSpan)

	assess := f.tel.Phase(epoch, "assess")
	agents := make([]*agent.Agent, n)
	for i := range agents {
		agents[i] = agent.New(i, pop.Jobs[i].Name, predD[i])
	}
	recs, err := agent.Exchange(agents, match, f.opts.Alpha)
	if err != nil {
		return nil, err
	}

	rep := &EpochReport{
		Population:       pop,
		Match:            match,
		PredictedPenalty: make([]float64, n),
		TruePenalty:      make([]float64, n),
		Recommendations:  recs,
		BlockingPairs:    agent.BlockingPairsFromRecommendations(recs),
	}
	for i, j := range match {
		if j != matching.Unmatched {
			rep.PredictedPenalty[i] = predD[i][j]
			rep.TruePenalty[i] = trueD[i][j]
		}
	}
	assess.SetAttr("breakaways", rep.BreakAwayCount())
	assess.SetAttr("blocking_pairs", len(rep.BlockingPairs))
	f.tel.End(assess)

	// Dispatch: agents participate by default (the paper's
	// implementation), so every assignment goes to the cluster.
	dispatch := f.tel.Phase(epoch, "dispatch")
	f.cluster.Reset()
	var batch []cluster.Assignment
	for i, j := range match {
		switch {
		case j == matching.Unmatched:
			batch = append(batch, cluster.Assignment{
				AgentA: i, AgentB: -1, JobA: pop.Jobs[i],
			})
		case i < j:
			batch = append(batch, cluster.Assignment{
				AgentA: i, AgentB: j, JobA: pop.Jobs[i], JobB: pop.Jobs[j],
			})
		}
	}
	results := f.cluster.Dispatch(batch)
	rep.Cluster = f.cluster.Summarize(results)
	dispatch.SetAttr("colocations", len(batch))
	f.tel.End(dispatch)
	f.tel.End(epoch)

	if reg != nil {
		reg.Counter("epoch.count").Inc()
		reg.Counter("epoch.agents").Add(int64(n))
		reg.Counter("epoch.breakaways").Add(int64(rep.BreakAwayCount()))
		reg.Counter("epoch.blocking_pairs").Add(int64(len(rep.BlockingPairs)))
		reg.Gauge("epoch.mean_penalty").Set(rep.MeanTruePenalty())
		h := reg.Histogram("epoch.penalty", telemetry.PenaltyBuckets())
		for _, p := range rep.TruePenalty {
			h.Observe(p)
		}
	}
	return rep, nil
}

// MeanTruePenalty returns the population-average oracle penalty of the
// epoch.
func (r *EpochReport) MeanTruePenalty() float64 {
	if len(r.TruePenalty) == 0 {
		return 0
	}
	var sum float64
	for _, p := range r.TruePenalty {
		sum += p
	}
	return sum / float64(len(r.TruePenalty))
}

// BreakAwayCount returns how many agents recommended breaking away.
func (r *EpochReport) BreakAwayCount() int {
	count := 0
	for _, rec := range r.Recommendations {
		if rec.Action == agent.BreakAway {
			count++
		}
	}
	return count
}
