// Package core wires Cooper's components into the end-to-end framework of
// the paper's Figure 6: the system profiler measures standalone and
// sampled colocated runs; the preference predictor completes the sparse
// penalty matrix; a colocation policy matches agents; agents assess their
// assignments and recommend strategic action; and the job dispatcher
// sends participating colocations to the cluster.
package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"cooper/internal/agent"
	"cooper/internal/arch"
	"cooper/internal/cachesim"
	"cooper/internal/cluster"
	"cooper/internal/matching"
	"cooper/internal/parallel"
	"cooper/internal/policy"
	"cooper/internal/profiler"
	"cooper/internal/recommend"
	"cooper/internal/shard"
	"cooper/internal/stats"
	"cooper/internal/telemetry"
	"cooper/internal/workload"
)

// ErrCanceled reports that a pipeline run was aborted by its context
// before completing. Wraps the underlying context error; test with
// errors.Is(err, ErrCanceled).
var ErrCanceled = errors.New("cooper: pipeline canceled")

// ErrClosed reports that the framework was Closed and accepts no more
// epochs. Test with errors.Is(err, ErrClosed).
var ErrClosed = errors.New("cooper: framework closed")

// Options is the legacy flat configuration surface.
//
// Deprecated: Options predates the grouped Config
// (Market/Pipeline/Observe) and has no market-sharding knobs. New code
// should build frameworks with NewFramework(Config) — or, through the
// facade, cooper.New with functional options. Options remains supported
// indefinitely: New converts it via Options.Config and the two construct
// identical frameworks.
type Options struct {
	// Machine is the CMP model shared by every node. Zero value means
	// arch.DefaultCMP().
	Machine arch.CMP
	// Machines is the cluster size in CMPs. Zero means 10 (the paper's
	// five dual-socket nodes).
	Machines int
	// Policy assigns colocations. Nil means StableMarriageRandom, the
	// paper's recommended policy.
	Policy policy.Policy
	// SampleFraction is the share of the colocation space profiled
	// offline. Zero means 0.25, the paper's operating point.
	SampleFraction float64
	// Predictor completes the sparse penalty matrix. Zero value fields
	// mean recommend.Default().
	Predictor recommend.Predictor
	// Alpha is the minimum performance gain for which an agent recommends
	// breaking away.
	Alpha float64
	// Oracle skips profiling and prediction, giving the policy exact
	// analytic penalties — the "oracular knowledge" configuration the
	// paper compares collaborative filtering against.
	Oracle bool
	// Seed drives all randomness (profiling noise, sampling, SMR
	// partitions).
	Seed int64
	// Sim overrides the profiling simulation config (zero value uses a
	// short, noisy default suitable for experiments).
	Sim arch.SimConfig
	// Catalog overrides the built-in Table I catalog with a custom one
	// (built via workload.BuildCatalog or workload.LoadCatalog against
	// the same Machine). Nil uses the paper's 20 jobs.
	Catalog []workload.Job
	// Penalties, when non-nil, supplies the completed job-level penalty
	// matrix directly (len(Catalog) x len(Catalog), row i = job i's
	// penalty against each co-runner) and skips the profiling campaign
	// and predictor entirely — for daemons that load measurements from a
	// profile database out of band.
	Penalties [][]float64
	// Workers bounds the worker pool the pipeline's fan-out phases share
	// (profiling campaign, matrix completion, oracle computation, epoch
	// assessment). <= 0 means GOMAXPROCS; 1 forces the serial pipeline.
	// Any value produces bit-identical results — parallelism never
	// perturbs the simulation.
	Workers int
	// Telemetry, when non-nil, receives phase spans and pipeline metrics
	// from every layer the framework touches. Nil (the default) disables
	// observability at near-zero cost.
	Telemetry *telemetry.Telemetry
	// EpochTimeout, when positive, bounds each RunEpoch's wall-clock time:
	// the epoch's context is cut over to a deadline and a run that blows
	// it returns an error wrapping ErrCanceled instead of stalling the
	// caller's scheduling loop (cooperd -epoch-timeout).
	EpochTimeout time.Duration
}

// Framework is a ready-to-run Cooper instance: calibrated catalog,
// profiling database, completed preference model, worker pool, pair
// cache, and cluster.
type Framework struct {
	cfg     Config
	catalog []workload.Job
	db      *profiler.Database
	cluster *cluster.Cluster

	predicted [][]float64 // job-level penalties as agents believe them
	truth     [][]float64 // job-level penalties from the analytic oracle
	iters     int         // predictor iterations used
	kernel    string      // which kernel produced predicted (see Kernel)
	rng       *rand.Rand
	tel       *telemetry.Telemetry
	pool      *parallel.Pool
	cache     *arch.PairCache

	mu       sync.Mutex // guards closed and stream
	closed   bool
	inflight sync.WaitGroup // in-flight epochs, for Close's drain
	epochSeq atomic.Int64   // 0-based epoch index stamped on flight-recorder events
	stream   *streamState   // streaming-market ledger, lazily created by StreamEpoch
}

// New builds a Framework from the legacy flat Options.
//
// Deprecated: use NewFramework (or the facade's functional options).
// New remains supported and builds the identical framework.
func New(opts Options) (*Framework, error) {
	return NewFrameworkContext(context.Background(), opts.Config())
}

// NewContext is New with cancellation.
//
// Deprecated: use NewFrameworkContext.
func NewContext(ctx context.Context, opts Options) (*Framework, error) {
	return NewFrameworkContext(ctx, opts.Config())
}

// NewFramework builds a Framework from the grouped Config: it calibrates
// the catalog, runs the offline profiling campaign, and trains the
// preference predictor.
func NewFramework(cfg Config) (*Framework, error) {
	return NewFrameworkContext(context.Background(), cfg)
}

// NewFrameworkContext is NewFramework with cancellation: the profiling
// campaign, predictor training, and oracle computation honor ctx, so a
// canceled build returns ErrCanceled instead of running minutes of
// simulation.
func NewFrameworkContext(ctx context.Context, cfg Config) (*Framework, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Machine.Validate(); err != nil {
		return nil, err
	}
	catalog := cfg.Catalog
	if catalog == nil {
		var err error
		catalog, err = workload.Catalog(cfg.Machine)
		if err != nil {
			return nil, err
		}
	}
	if len(catalog) == 0 {
		return nil, fmt.Errorf("core: empty catalog")
	}
	f := &Framework{
		cfg:     cfg,
		catalog: catalog,
		db:      profiler.NewDatabase(),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		tel:     cfg.Observe.Telemetry,
		pool:    parallel.NewPool(cfg.Pipeline.Workers),
	}
	f.cache = arch.NewPairCache(cfg.Machine, f.tel.Registry())
	if f.tel != nil {
		// Route the model layers' package-level sinks into this registry.
		arch.SetMetrics(f.tel.Registry())
		cachesim.SetMetrics(f.tel.Registry())
	}
	var err error
	f.cluster, err = cluster.New(cfg.Machines, cfg.Machine)
	if err != nil {
		return nil, err
	}
	f.cluster.SetPairCache(f.cache)

	f.truth, err = profiler.DensePenaltiesContext(ctx, cfg.Machine, catalog,
		f.pool.Workers(), f.cache)
	if err != nil {
		return nil, wrapCanceled(ctx, err)
	}
	if cfg.Pipeline.Oracle {
		f.predicted = f.truth
		f.kernel = "oracle"
		return f, nil
	}
	if cfg.Pipeline.Penalties != nil {
		if err := validatePenalties(cfg.Pipeline.Penalties, len(catalog)); err != nil {
			return nil, err
		}
		f.predicted = cfg.Pipeline.Penalties
		f.kernel = "external"
		return f, nil
	}

	prof := profiler.New(cfg.Machine, f.db, cfg.Seed+1)
	prof.Sim = cfg.Sim
	prof.Tel = f.tel
	prof.Workers = f.pool.Workers()
	if err := prof.CampaignContext(ctx, catalog, cfg.Pipeline.SampleFraction); err != nil {
		return nil, wrapCanceled(ctx, err)
	}
	sparse, err := profiler.PenaltyMatrix(f.db, catalog)
	if err != nil {
		return nil, err
	}
	reg := f.tel.Registry()
	predict := f.tel.Phase(nil, "predict")
	predict.SetAttr("sparsity", profiler.Sparsity(sparse))
	preRecomputed := reg.Counter("predict.sim_pairs_recomputed").Value()
	preSkipped := reg.Counter("predict.sim_pairs_skipped").Value()
	preCandScored := reg.Counter("predict.candidates_scored").Value()
	preCandSkipped := reg.Counter("predict.candidates_skipped").Value()
	pred := cfg.Pipeline.Predictor
	pred.Metrics = reg
	pred.Workers = f.pool.Workers()
	f.kernel = pred.KernelName()
	predict.SetAttr("kernel", f.kernel)
	f.predicted, f.iters, err = pred.CompleteContext(ctx, sparse)
	if err != nil {
		return nil, wrapCanceled(ctx, err)
	}
	predict.SetAttr("fill_iters", f.iters)
	predict.SetAttr("sim_pairs_recomputed", reg.Counter("predict.sim_pairs_recomputed").Value()-preRecomputed)
	predict.SetAttr("sim_pairs_skipped", reg.Counter("predict.sim_pairs_skipped").Value()-preSkipped)
	if scored := reg.Counter("predict.candidates_scored").Value() - preCandScored; scored > 0 {
		predict.SetAttr("candidates_scored", scored)
		predict.SetAttr("candidates_skipped", reg.Counter("predict.candidates_skipped").Value()-preCandSkipped)
	}
	f.tel.End(predict)
	return f, nil
}

// validatePenalties checks a caller-supplied job-level penalty matrix.
func validatePenalties(d [][]float64, n int) error {
	if len(d) != n {
		return fmt.Errorf("core: penalties have %d rows for %d catalog jobs", len(d), n)
	}
	for i, row := range d {
		if len(row) != n {
			return fmt.Errorf("core: penalties row %d has %d entries, want %d", i, len(row), n)
		}
	}
	return nil
}

// reportedShards normalizes a shard-count knob for snapshots: only a
// sharded market (> 1) is worth recording, and old logs carry zero.
func reportedShards(shards int) int {
	if shards > 1 {
		return shards
	}
	return 0
}

// wrapCanceled tags an error with ErrCanceled when ctx was canceled, so
// callers can test cancellation with errors.Is regardless of which
// pipeline layer surfaced it first.
func wrapCanceled(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if ctx.Err() != nil {
		return fmt.Errorf("%w: %v", ErrCanceled, err)
	}
	return err
}

// Close drains the framework: it marks the framework closed, waits for
// in-flight epochs to finish, and shuts the worker pool down. Further
// RunEpoch calls return ErrClosed. Safe to call more than once and from
// any goroutine (cooperd calls it from its signal handler while an epoch
// may be mid-dispatch).
func (f *Framework) Close() error {
	f.mu.Lock()
	already := f.closed
	f.closed = true
	f.mu.Unlock()
	if already {
		return nil
	}
	f.inflight.Wait()
	f.pool.Close()
	return nil
}

// Closed reports whether Close has been called.
func (f *Framework) Closed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed
}

// Workers returns the resolved worker budget of the framework's pool.
func (f *Framework) Workers() int { return f.pool.Workers() }

// PairCache returns the framework's memoized pair-penalty cache.
func (f *Framework) PairCache() *arch.PairCache { return f.cache }

// Catalog returns the calibrated 20-job catalog.
func (f *Framework) Catalog() []workload.Job { return f.catalog }

// Database returns the profiling database (empty in Oracle mode).
func (f *Framework) Database() *profiler.Database { return f.db }

// PredictedPenalties returns the completed job-level penalty matrix the
// agents believe.
func (f *Framework) PredictedPenalties() [][]float64 { return f.predicted }

// TruePenalties returns the oracle job-level penalty matrix.
func (f *Framework) TruePenalties() [][]float64 { return f.truth }

// PredictorIterations returns how many fill iterations the preference
// predictor used (0 in Oracle mode).
func (f *Framework) PredictorIterations() int { return f.iters }

// Kernel names the prediction kernel that produced the penalty matrix:
// "oracle", "external", "flat", "reference", or
// "approx(bits=B,bands=K)" for the LSH-bucketed approximate path.
func (f *Framework) Kernel() string { return f.kernel }

// Telemetry returns the telemetry handle the framework was built with
// (nil when observability is disabled).
func (f *Framework) Telemetry() *telemetry.Telemetry { return f.tel }

// Snapshot copies the framework's metrics and span tree. With telemetry
// disabled it returns an empty snapshot, so callers need not branch.
func (f *Framework) Snapshot() telemetry.Snapshot { return f.tel.Snapshot() }

// PredictionAccuracy evaluates the paper's Equation 2 on this framework's
// predicted versus true job-level penalties.
func (f *Framework) PredictionAccuracy() (float64, error) {
	return recommend.PreferenceAccuracy(f.truth, f.predicted)
}

// SamplePopulation draws n agents from the catalog with the given mix.
// Any stats.Sampler works — the built-in mixes (stats.Uniform,
// stats.Bimodal, ...) or a custom distribution.
func (f *Framework) SamplePopulation(n int, mix stats.Sampler) workload.Population {
	return workload.Sample(n, f.catalog, mix, f.rng)
}

// EpochReport is the outcome of one scheduling epoch.
type EpochReport struct {
	Population workload.Population
	Match      matching.Matching
	// Shards is the shard count the epoch's market was cleared with
	// (zero for the single unsharded market), and RefinementRounds /
	// RefinementTrades summarize the cross-shard refinement pass.
	Shards           int
	RefinementRounds int
	RefinementTrades int
	// PredictedPenalty and TruePenalty are per-agent disutilities under
	// the assignment, as predicted by agents and as the oracle knows
	// them.
	PredictedPenalty []float64
	TruePenalty      []float64
	// Recommendations are the agents' strategic assessments.
	Recommendations []agent.Recommendation
	// BlockingPairs are the mutual break-away opportunities agents
	// discovered (under their predicted preferences, with the
	// framework's alpha).
	BlockingPairs [][2]int
	// Cluster summarizes the dispatch of participating colocations.
	Cluster cluster.Report
	// AgentIDs maps each index to its stable streaming-market identity
	// (nil for classic RunEpoch epochs, whose agents are their indices).
	// Departures in a later StreamEpoch's Churn name these IDs.
	AgentIDs []int
	// Rematch summarizes how a streaming epoch absorbed its churn (nil
	// for classic epochs).
	Rematch *RematchSummary
}

// RunEpoch plays one round of the colocation game for the population:
// predict preferences, assign colocations, let agents assess them, and
// dispatch the work.
func (f *Framework) RunEpoch(pop workload.Population) (*EpochReport, error) {
	return f.RunEpochContext(context.Background(), pop)
}

// RunEpochContext is RunEpoch with cancellation and parallel assessment.
// The pipeline checks ctx between its phases (expand, match, assess,
// dispatch) and inside the assessment fan-out, returning an error that
// wraps ErrCanceled if ctx fires. After Close it returns ErrClosed.
func (f *Framework) RunEpochContext(ctx context.Context, pop workload.Population) (*EpochReport, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, ErrClosed
	}
	f.inflight.Add(1)
	f.mu.Unlock()
	defer f.inflight.Done()

	if f.cfg.Pipeline.EpochTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, f.cfg.Pipeline.EpochTimeout)
		defer cancel()
	}

	n := len(pop.Jobs)
	if n == 0 {
		return nil, fmt.Errorf("core: empty population")
	}
	if err := ctx.Err(); err != nil {
		return nil, wrapCanceled(ctx, err)
	}
	// The epoch span is keyed by index so its ID is a pure function of
	// the seed and the epoch number: restarts and replays agree on it.
	epochIdx := int(f.epochSeq.Add(1) - 1)
	epoch := f.tel.PhaseKeyed(nil, "epoch", int64(epochIdx))
	epoch.SetAttr("agents", n)
	f.tel.RecordIn(epoch, telemetry.Event{
		Type: telemetry.EventEpochStart, Epoch: epochIdx,
		Agent: -1, Partner: -1, Value: float64(n),
	})
	if f.tel.EventRing() != nil {
		// Pin the epoch's inputs so an -events-out log is self-contained
		// for cooper-replay: in-process agents are their epoch-local
		// indices, and the matrix is the job-level predicted penalties the
		// policy actually saw. α is recorded as "no contract" — the
		// framework counts blocking pairs as a result (Figure 10), it does
		// not promise their absence.
		agents := make([]int, n)
		jobs := make([]string, n)
		for i, job := range pop.Jobs {
			agents[i] = i
			jobs[i] = job.Name
		}
		catalog := make([]string, len(f.catalog))
		for i, job := range f.catalog {
			catalog[i] = job.Name
		}
		f.tel.RecordIn(epoch, telemetry.EpochSnapshot{
			Epoch: epochIdx, Source: telemetry.SnapshotSourceCore,
			Policy: f.cfg.Market.Policy.Name(), Seed: f.cfg.Seed, Alpha: -1,
			Shards: reportedShards(f.cfg.Market.Shards),
			Kernel: f.kernel,
			Agents: agents, Jobs: jobs,
			Catalog: catalog, Matrix: f.predicted,
		}.Event())
	}
	if err := ctx.Err(); err != nil {
		return nil, wrapCanceled(ctx, err)
	}

	reg := f.tel.Registry()
	var (
		match  matching.Matching
		recs   []agent.Recommendation
		predAt func(i, j int) float64
		mres   *shard.Result
	)
	if f.cfg.Market.Shards > 1 {
		// Sharded market: the job-level matrix is never expanded to the
		// n×n agent matrix — shards look penalties up through their jobs,
		// so memory scales with shard size, not population size.
		names := make([]string, n)
		for i, job := range pop.Jobs {
			names[i] = job.Name
		}
		jobIdx, err := shard.JobIndices(f.catalog, names)
		if err != nil {
			return nil, err
		}
		matchSpan := f.tel.Phase(epoch, "match")
		mk := &shard.Market{
			Shards:           f.cfg.Market.Shards,
			RefinementBudget: f.cfg.Market.RefinementBudget,
			Policy:           f.cfg.Market.Policy,
			Alpha:            f.cfg.Market.Alpha,
			Workers:          f.pool.Workers(),
			Seed:             f.rng.Int63(),
			Epoch:            epochIdx,
			Tel:              f.tel,
			Span:             matchSpan,
		}
		mres, err = mk.Clear(ctx, pop.Jobs, jobIdx, f.predicted)
		if err != nil {
			return nil, wrapCanceled(ctx, err)
		}
		matchSpan.SetAttr("policy", f.cfg.Market.Policy.Name())
		matchSpan.SetAttr("shards", f.cfg.Market.Shards)
		matchSpan.SetAttr("refinement_rounds", mres.RefinementRounds)
		matchSpan.SetAttr("refinement_trades", mres.RefinementTrades)
		f.tel.End(matchSpan)
		match, recs = mres.Match, mres.Recommendations
		predAt = func(i, j int) float64 { return f.predicted[jobIdx[i]][jobIdx[j]] }
	} else {
		predD, err := profiler.ExpandToAgents(f.predicted, f.catalog, pop)
		if err != nil {
			return nil, err
		}
		bw := make([]float64, n)
		for i, j := range pop.Jobs {
			bw[i] = j.BandwidthGBps
		}

		matchSpan := f.tel.Phase(epoch, "match")
		preProposals := reg.Counter("match.proposals").Value()
		preRotations := reg.Counter("match.rotations").Value()
		match, err = f.cfg.Market.Policy.Assign(predD, policy.Context{
			BandwidthGBps: bw,
			Rand:          f.rng,
			Metrics:       reg,
		})
		if err != nil {
			return nil, err
		}
		matchSpan.SetAttr("policy", f.cfg.Market.Policy.Name())
		matchSpan.SetAttr("proposals", reg.Counter("match.proposals").Value()-preProposals)
		matchSpan.SetAttr("rotations", reg.Counter("match.rotations").Value()-preRotations)
		f.tel.End(matchSpan)

		if err := ctx.Err(); err != nil {
			return nil, wrapCanceled(ctx, err)
		}
		agents := make([]*agent.Agent, n)
		for i := range agents {
			agents[i] = agent.New(i, pop.Jobs[i].Name, predD[i])
		}
		recs, err = agent.Exchange(agents, match, f.cfg.Market.Alpha)
		if err != nil {
			return nil, err
		}
		predAt = func(i, j int) float64 { return predD[i][j] }
	}

	if err := ctx.Err(); err != nil {
		return nil, wrapCanceled(ctx, err)
	}
	assess := f.tel.Phase(epoch, "assess")

	// True penalties come from simulating each matched pair on its own
	// CMP, fanned out across the worker pool and memoized through the
	// pair cache. The solve is deterministic, so this equals the oracle
	// matrix lookup bit for bit at any worker count.
	trueP, err := policy.TruePenalties(ctx, f.cfg.Machine, pop.Jobs, match,
		f.pool.Workers(), f.cache)
	if err != nil {
		return nil, wrapCanceled(ctx, err)
	}

	rep := &EpochReport{
		Population:       pop,
		Match:            match,
		PredictedPenalty: make([]float64, n),
		TruePenalty:      trueP,
		Recommendations:  recs,
		BlockingPairs:    agent.BlockingPairsFromRecommendations(recs),
	}
	if mres != nil {
		rep.Shards = f.cfg.Market.Shards
		rep.RefinementRounds = mres.RefinementRounds
		rep.RefinementTrades = mres.RefinementTrades
	}
	var meanPred float64
	for i, j := range match {
		if j != matching.Unmatched {
			rep.PredictedPenalty[i] = predAt(i, j)
			meanPred += predAt(i, j)
		}
		switch {
		case j == matching.Unmatched:
			f.tel.RecordIn(epoch, telemetry.Event{
				Type: telemetry.EventAgentUnpaired, Epoch: epochIdx,
				Agent: i, Partner: -1, Job: pop.Jobs[i].Name,
			})
		case i < j:
			// One flight-recorder record per colocation, predicted next
			// to oracle truth — the per-pair accuracy residual the
			// paper's Figure 5 aggregates.
			f.tel.RecordIn(epoch, telemetry.Event{
				Type: telemetry.EventPairMatched, Epoch: epochIdx,
				Agent: i, Partner: j, Job: pop.Jobs[i].Name,
				Predicted: predAt(i, j), True: trueP[i],
			})
		}
	}
	meanPred /= float64(n)
	assess.SetAttr("breakaways", rep.BreakAwayCount())
	assess.SetAttr("blocking_pairs", len(rep.BlockingPairs))
	f.tel.End(assess)

	// Dispatch: agents participate by default (the paper's
	// implementation), so every assignment goes to the cluster.
	if err := ctx.Err(); err != nil {
		return nil, wrapCanceled(ctx, err)
	}
	dispatch := f.tel.Phase(epoch, "dispatch")
	f.cluster.Reset()
	var batch []cluster.Assignment
	for i, j := range match {
		switch {
		case j == matching.Unmatched:
			batch = append(batch, cluster.Assignment{
				AgentA: i, AgentB: -1, JobA: pop.Jobs[i],
			})
		case i < j:
			batch = append(batch, cluster.Assignment{
				AgentA: i, AgentB: j, JobA: pop.Jobs[i], JobB: pop.Jobs[j],
			})
		}
	}
	results := f.cluster.Dispatch(batch)
	rep.Cluster = f.cluster.Summarize(results)
	dispatch.SetAttr("colocations", len(batch))
	f.tel.End(dispatch)
	f.tel.End(epoch)

	if reg != nil {
		reg.Counter("epoch.count").Inc()
		reg.Counter("epoch.agents").Add(int64(n))
		reg.Counter("epoch.breakaways").Add(int64(rep.BreakAwayCount()))
		reg.Counter("epoch.blocking_pairs").Add(int64(len(rep.BlockingPairs)))
		reg.Gauge("epoch.mean_penalty").Set(rep.MeanTruePenalty())
		h := reg.Histogram("epoch.penalty", telemetry.PenaltyBuckets())
		for _, p := range rep.TruePenalty {
			h.Observe(p)
		}
	}
	f.tel.RecordIn(epoch, telemetry.Event{
		Type: telemetry.EventCacheHitRate, Epoch: epochIdx,
		Agent: -1, Partner: -1, Value: f.cache.HitRate(),
	})
	// Value is the oracle mean (what the dashboards chart); Predicted is
	// the matrix-derived mean an offline auditor can recompute from the
	// epoch snapshot alone, bit for bit.
	f.tel.RecordIn(epoch, telemetry.Event{
		Type: telemetry.EventEpochEnd, Epoch: epochIdx,
		Agent: -1, Partner: -1, Value: rep.MeanTruePenalty(),
		Predicted: meanPred,
	})
	return rep, nil
}

// MeanTruePenalty returns the population-average oracle penalty of the
// epoch.
func (r *EpochReport) MeanTruePenalty() float64 {
	if len(r.TruePenalty) == 0 {
		return 0
	}
	var sum float64
	for _, p := range r.TruePenalty {
		sum += p
	}
	return sum / float64(len(r.TruePenalty))
}

// BreakAwayCount returns how many agents recommended breaking away.
func (r *EpochReport) BreakAwayCount() int {
	count := 0
	for _, rec := range r.Recommendations {
		if rec.Action == agent.BreakAway {
			count++
		}
	}
	return count
}
