package core

import (
	"errors"
	"testing"
	"time"

	"cooper/internal/matching"
	"cooper/internal/policy"
	"cooper/internal/stats"
	"cooper/internal/telemetry"
	"cooper/internal/workload"
)

func oracleFramework(t *testing.T, p policy.Policy, seed int64) *Framework {
	t.Helper()
	f, err := New(Options{Policy: p, Oracle: true, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewOracle(t *testing.T) {
	f := oracleFramework(t, nil, 1)
	if len(f.Catalog()) != 20 {
		t.Fatalf("catalog = %d", len(f.Catalog()))
	}
	if f.Database().Len() != 0 {
		t.Error("oracle mode should not profile")
	}
	acc, err := f.PredictionAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 {
		t.Errorf("oracle accuracy = %v, want 1", acc)
	}
}

func TestNewWithProfiling(t *testing.T) {
	f, err := New(Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if f.Database().Len() == 0 {
		t.Error("profiling campaign should populate the database")
	}
	if f.PredictorIterations() < 1 || f.PredictorIterations() > 3 {
		t.Errorf("predictor iterations = %d, want 1-3", f.PredictorIterations())
	}
	acc, err := f.PredictionAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	// End-to-end accuracy runs through noisy profiling, so it trails the
	// noiseless Figure 12 numbers (~0.73 at 25% sampling) somewhat.
	if acc < 0.60 {
		t.Errorf("prediction accuracy = %.3f, want >= 0.60 at 25%% sampling", acc)
	}
}

func TestNewInvalidMachine(t *testing.T) {
	opts := Options{}
	opts.Machine.Cores = -1
	if _, err := New(opts); err == nil {
		t.Error("invalid machine accepted")
	}
}

func TestRunEpochOracle(t *testing.T) {
	f := oracleFramework(t, policy.StableMarriageRandom{}, 3)
	pop := f.SamplePopulation(40, stats.Uniform{})
	rep, err := f.RunEpoch(pop)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Match.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, j := range rep.Match {
		if j == matching.Unmatched {
			t.Fatalf("agent %d unmatched in even population", i)
		}
	}
	if rep.MeanTruePenalty() <= 0 {
		t.Errorf("mean penalty = %v", rep.MeanTruePenalty())
	}
	if rep.Cluster.Jobs != 40 {
		t.Errorf("cluster ran %d jobs, want 40", rep.Cluster.Jobs)
	}
	if rep.Cluster.UtilizationPct <= 0 {
		t.Errorf("utilization = %v", rep.Cluster.UtilizationPct)
	}
	// With oracle penalties, predicted and true per-agent penalties agree.
	for i := range rep.TruePenalty {
		if rep.TruePenalty[i] != rep.PredictedPenalty[i] {
			t.Fatal("oracle epoch should have matching penalties")
		}
	}
}

func TestEpochTimeoutBoundsRunEpoch(t *testing.T) {
	f, err := New(Options{Policy: policy.Greedy{}, Oracle: true, Seed: 1,
		EpochTimeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pop := f.SamplePopulation(8, stats.Uniform{})
	if _, err := f.RunEpoch(pop); !errors.Is(err, ErrCanceled) {
		t.Fatalf("RunEpoch under 1ns epoch timeout = %v, want ErrCanceled", err)
	}

	// A generous deadline must not perturb a normal epoch.
	g, err := New(Options{Policy: policy.Greedy{}, Oracle: true, Seed: 1,
		EpochTimeout: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.RunEpoch(pop); err != nil {
		t.Fatalf("RunEpoch under 1h epoch timeout: %v", err)
	}
}

func TestRunEpochEmptyPopulation(t *testing.T) {
	f := oracleFramework(t, nil, 4)
	if _, err := f.RunEpoch(f.SamplePopulation(0, stats.Uniform{})); err == nil {
		t.Error("empty population accepted")
	}
}

func TestStablePolicyBlocksLessThanGreedy(t *testing.T) {
	popSeed := int64(5)
	blockCount := func(p policy.Policy) int {
		f := oracleFramework(t, p, popSeed)
		pop := f.SamplePopulation(100, stats.Uniform{})
		rep, err := f.RunEpoch(pop)
		if err != nil {
			t.Fatal(err)
		}
		return len(rep.BlockingPairs)
	}
	gr := blockCount(policy.Greedy{})
	smr := blockCount(policy.StableMarriageRandom{})
	if smr > gr {
		t.Errorf("SMR blocking pairs %d exceed GR %d", smr, gr)
	}
}

func TestRunEpochPerformanceWithinHeuristics(t *testing.T) {
	// The paper's headline: Cooper performs within ~5% of prior
	// heuristics. Compare SMR's mean penalty against GR's.
	mean := func(p policy.Policy) float64 {
		f := oracleFramework(t, p, 6)
		pop := f.SamplePopulation(200, stats.Uniform{})
		rep, err := f.RunEpoch(pop)
		if err != nil {
			t.Fatal(err)
		}
		return rep.MeanTruePenalty()
	}
	gr := mean(policy.Greedy{})
	smr := mean(policy.StableMarriageRandom{})
	if smr > gr+0.05 {
		t.Errorf("SMR mean penalty %.4f should be within 5%% of GR %.4f", smr, gr)
	}
}

func TestBreakAwayCountsRespondToAlpha(t *testing.T) {
	count := func(alpha float64) int {
		f, err := New(Options{Policy: policy.Greedy{}, Oracle: true, Seed: 7, Alpha: alpha})
		if err != nil {
			t.Fatal(err)
		}
		pop := f.SamplePopulation(100, stats.Uniform{})
		rep, err := f.RunEpoch(pop)
		if err != nil {
			t.Fatal(err)
		}
		return rep.BreakAwayCount()
	}
	loose := count(0)
	strict := count(0.05)
	if strict > loose {
		t.Errorf("raising alpha should reduce break-aways: %d -> %d", loose, strict)
	}
}

func TestSamplePopulationMixes(t *testing.T) {
	f := oracleFramework(t, nil, 8)
	low := f.SamplePopulation(500, stats.BetaLow())
	high := f.SamplePopulation(500, stats.BetaHigh())
	var bwLow, bwHigh float64
	for _, j := range low.Jobs {
		bwLow += j.BandwidthGBps
	}
	for _, j := range high.Jobs {
		bwHigh += j.BandwidthGBps
	}
	if bwLow >= bwHigh {
		t.Errorf("Beta-Low population should demand less bandwidth: %v vs %v",
			bwLow, bwHigh)
	}
}

func TestNewCustomCatalogValidation(t *testing.T) {
	if _, err := New(Options{Catalog: []workload.Job{}, Oracle: true}); err == nil {
		t.Error("empty custom catalog accepted")
	}
}

func TestRunEpochUnknownJob(t *testing.T) {
	f := oracleFramework(t, nil, 40)
	pop := workload.Population{Jobs: []workload.Job{{Name: "ghost"}}}
	if _, err := f.RunEpoch(pop); err == nil {
		t.Error("population with unknown job accepted")
	}
}

func TestRunEpochOddPopulation(t *testing.T) {
	f := oracleFramework(t, nil, 41)
	pop := f.SamplePopulation(41, stats.Uniform{})
	rep, err := f.RunEpoch(pop)
	if err != nil {
		t.Fatal(err)
	}
	solo := 0
	for _, j := range rep.Match {
		if j == matching.Unmatched {
			solo++
		}
	}
	if solo != 1 {
		t.Errorf("odd population left %d solo agents", solo)
	}
	if rep.Cluster.Jobs != 41 {
		t.Errorf("cluster ran %d jobs, want 41", rep.Cluster.Jobs)
	}
}

func TestPredictSpanSimPairAttrs(t *testing.T) {
	tel := telemetry.New()
	f, err := New(Options{Seed: 11, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	_ = f
	span := tel.Trace.Find("predict")
	if span == nil {
		t.Fatal("no predict span recorded")
	}
	attrs := map[string]any{}
	for _, a := range span.Snapshot().Attrs {
		attrs[a.Key] = a.Value
	}
	rec, ok := attrs["sim_pairs_recomputed"].(int64)
	if !ok {
		t.Fatalf("sim_pairs_recomputed attr missing or wrong type: %v", attrs)
	}
	skip, ok := attrs["sim_pairs_skipped"].(int64)
	if !ok {
		t.Fatalf("sim_pairs_skipped attr missing or wrong type: %v", attrs)
	}
	if rec <= 0 {
		t.Errorf("sim_pairs_recomputed = %d, want > 0 for a profiled fill", rec)
	}
	if rec+skip <= 0 || skip < 0 {
		t.Errorf("sim pair counters implausible: recomputed=%d skipped=%d", rec, skip)
	}
	// The span attrs are deltas of the registry counters, so they must not
	// exceed the totals.
	reg := tel.Registry()
	if total := reg.Counter("predict.sim_pairs_recomputed").Value(); rec > total {
		t.Errorf("span delta %d exceeds counter total %d", rec, total)
	}
}
