package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"cooper/internal/audit"
	"cooper/internal/matching"
	"cooper/internal/telemetry"
	"cooper/internal/workload"
)

func streamFramework(t *testing.T, workers, shards int, seed int64) *Framework {
	t.Helper()
	f, err := NewFramework(Config{
		Seed:     seed,
		Market:   MarketConfig{Rematch: true, Shards: shards},
		Pipeline: PipelineConfig{Oracle: true, Workers: workers},
		Observe:  ObserveConfig{Telemetry: telemetry.New()},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// streamTrace is the shared churn scenario: a cold-start epoch, two
// low-churn epochs that must repair incrementally, and a heavy-churn
// epoch that must trip the threshold back to a full clear.
func streamTrace(catalog []workload.Job) []Churn {
	join := func(idx ...int) []workload.Job {
		jobs := make([]workload.Job, len(idx))
		for i, k := range idx {
			jobs[i] = catalog[k%len(catalog)]
		}
		return jobs
	}
	cold := make([]int, 40)
	for i := range cold {
		cold[i] = i
	}
	heavy := make([]int, 12)
	for i := range heavy {
		heavy[i] = 7 + i
	}
	// Churn is cumulative between full clears: with baseN=40 and the
	// default 10% threshold the budget is 4, so 1 + 3 stays in repair
	// territory and the heavy epoch blows well past it.
	return []Churn{
		{Join: join(cold...)},
		{Join: join(3)},
		{Join: join(5), Depart: []int{17, 30}},
		{Join: join(heavy...), Depart: []int{1, 4, 9, 25}},
	}
}

func TestStreamEpochRequiresRematch(t *testing.T) {
	f := oracleFramework(t, nil, 1)
	if _, err := f.StreamEpoch(Churn{Join: f.Catalog()[:2]}); err == nil ||
		!strings.Contains(err.Error(), "Rematch") {
		t.Fatalf("StreamEpoch without Market.Rematch: %v", err)
	}
}

func TestStreamEpochModes(t *testing.T) {
	f := streamFramework(t, 0, 1, 11)
	trace := streamTrace(f.Catalog())
	reports := make([]*EpochReport, len(trace))
	for e, churn := range trace {
		rep, err := f.StreamEpoch(churn)
		if err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
		if rep.Rematch == nil {
			t.Fatalf("epoch %d: no rematch summary", e)
		}
		if err := rep.Match.Validate(); err != nil {
			t.Fatalf("epoch %d: invalid matching: %v", e, err)
		}
		reports[e] = rep
	}
	for e, want := range []string{"full", "repair", "repair", "full"} {
		if got := reports[e].Rematch.Mode; got != want {
			t.Fatalf("epoch %d mode = %q, want %q", e, got, want)
		}
	}
	if nb := reports[1].Rematch.Neighborhood; nb == 0 || nb >= len(reports[1].AgentIDs) {
		t.Fatalf("repair neighborhood = %d of %d agents", nb, len(reports[1].AgentIDs))
	}

	// Repair epochs only move agents inside the declared neighborhood:
	// every surviving agent outside it keeps its epoch-0 partner.
	partnerOf := func(rep *EpochReport) map[int]int {
		m := make(map[int]int, len(rep.AgentIDs))
		for i, p := range rep.Match {
			if p == matching.Unmatched {
				m[rep.AgentIDs[i]] = matching.Unmatched
			} else {
				m[rep.AgentIDs[i]] = rep.AgentIDs[p]
			}
		}
		return m
	}
	prev := partnerOf(reports[0])
	cur := partnerOf(reports[1])
	// Epoch 1's neighborhood in stable IDs comes from the summary count
	// only; recover it from the flight log instead.
	var nbhd map[int]bool
	for _, ev := range f.Telemetry().EventRing().Events() {
		if ev.Type == telemetry.EventRematchRound && ev.Epoch == 1 {
			var payload struct {
				Neighborhood []int `json:"neighborhood"`
			}
			if err := json.Unmarshal([]byte(ev.Data), &payload); err != nil {
				t.Fatalf("rematch payload: %v", err)
			}
			nbhd = make(map[int]bool, len(payload.Neighborhood))
			for _, id := range payload.Neighborhood {
				nbhd[id] = true
			}
		}
	}
	if nbhd == nil {
		t.Fatal("no rematch_round event for epoch 1")
	}
	for id, p := range cur {
		was, survived := prev[id]
		if !survived || nbhd[id] {
			continue
		}
		if was != p {
			t.Fatalf("agent %d outside neighborhood changed %d -> %d", id, was, p)
		}
	}
}

func TestStreamEpochAuditClean(t *testing.T) {
	for _, shards := range []int{1, 4} {
		f := streamFramework(t, 0, shards, 23)
		for e, churn := range streamTrace(f.Catalog()) {
			if _, err := f.StreamEpoch(churn); err != nil {
				t.Fatalf("shards=%d epoch %d: %v", shards, e, err)
			}
		}
		rep := audit.Replay(f.Telemetry().EventRing().Events(), audit.Options{})
		if !rep.OK() {
			for _, v := range rep.Violations {
				t.Errorf("shards=%d: %s: %s", shards, v.Invariant, v.Detail)
			}
			t.Fatalf("shards=%d: churn-stream audit found %d violations", shards, len(rep.Violations))
		}
		if rep.Epochs != 4 {
			t.Fatalf("shards=%d: audited %d epochs, want 4", shards, rep.Epochs)
		}
	}
}

func TestStreamEpochDeterministicAcrossWorkers(t *testing.T) {
	type run struct {
		reports [][]byte
		events  []telemetry.Event
	}
	runs := make([]run, 0, 2)
	for _, workers := range []int{1, 8} {
		f := streamFramework(t, workers, 4, 42)
		var r run
		for e, churn := range streamTrace(f.Catalog()) {
			rep, err := f.StreamEpoch(churn)
			if err != nil {
				t.Fatalf("workers=%d epoch %d: %v", workers, e, err)
			}
			b, err := json.Marshal(rep)
			if err != nil {
				t.Fatal(err)
			}
			r.reports = append(r.reports, b)
		}
		for _, ev := range f.Telemetry().EventRing().Events() {
			r.events = append(r.events, ev.Canon())
		}
		runs = append(runs, r)
	}
	for e := range runs[0].reports {
		if !bytes.Equal(runs[0].reports[e], runs[1].reports[e]) {
			t.Fatalf("epoch %d report differs between 1 and 8 workers", e)
		}
	}
	if len(runs[0].events) != len(runs[1].events) {
		t.Fatalf("event counts differ: %d vs %d", len(runs[0].events), len(runs[1].events))
	}
	for i := range runs[0].events {
		if runs[0].events[i] != runs[1].events[i] {
			t.Fatalf("event %d differs:\n  1 worker:  %+v\n  8 workers: %+v",
				i, runs[0].events[i], runs[1].events[i])
		}
	}
}

func TestStreamEpochChurnErrors(t *testing.T) {
	f := streamFramework(t, 0, 1, 5)
	if _, err := f.StreamEpoch(Churn{Join: []workload.Job{{Name: "no-such-job"}}}); err == nil {
		t.Fatal("off-catalog join accepted")
	}
	if _, err := f.StreamEpoch(Churn{Depart: []int{99}}); err == nil {
		t.Fatal("unknown departure accepted")
	}
	if _, err := f.StreamEpoch(Churn{}); err == nil {
		t.Fatal("empty-population epoch accepted")
	}
	// The failed churns must not have corrupted the ledger.
	if _, err := f.StreamEpoch(Churn{Join: f.Catalog()[:4]}); err != nil {
		t.Fatalf("recovery epoch: %v", err)
	}
}
