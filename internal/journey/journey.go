// Package journey folds the flight recorder's event stream into
// per-agent timelines: each agent's path through the coordinator's
// lifecycle — queued → admitted → matched/unpaired (→ severed →
// repaired …) → reaped — with the latency of every transition and the
// causal trace/span identity of the event behind it.
//
// The same Builder works live (registered on the EventRing via
// AddObserver, feeding /debug/journey) and offline (Build over a
// decoded -events-out log, feeding cooper-trace). Both paths fold the
// identical event sequence, so a journey reconstructed from a flight
// log is byte-identical to the one the daemon served while running.
package journey

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"cooper/internal/telemetry"
)

// State names one stop on an agent's journey.
type State string

const (
	// StateQueued is the agent_queued event: the registration reached
	// the coordinator and sat in the admission queue.
	StateQueued State = "queued"
	// StateAdmitted is the agent_registered event: the agent joined the
	// population at an epoch boundary. (The wire calls this
	// "registered"; the journey calls it admitted because that is the
	// transition the admit-wait histogram measures.)
	StateAdmitted State = "admitted"
	// StateMatched is a pair_matched assignment naming this agent on
	// either side.
	StateMatched State = "matched"
	// StateUnpaired is an explicit solo assignment (odd population,
	// Threshold policy).
	StateUnpaired State = "unpaired"
	// StateSevered is synthesized when the agent's current partner is
	// reaped while the pair stood: the colocation ended without this
	// agent doing anything. Partner names the reaped peer; Seq and the
	// causal IDs come from the partner's agent_reaped event.
	StateSevered State = "severed"
	// StateRepaired is a re-assignment that heals a standing placement:
	// a pair_matched that follows a severed step, or one that replaces
	// an existing assignment inside an epoch that ran an incremental
	// repair round (rematch_round kind "repair").
	StateRepaired State = "repaired"
	// StateReaped is the agent_reaped event: the coordinator removed
	// the agent after a dead or mute connection. Terminal.
	StateReaped State = "reaped"
)

// Step is one journey transition, carrying the source event's identity.
type Step struct {
	State State `json:"state"`
	// Epoch is the scheduling epoch the transition happened in.
	Epoch int `json:"epoch"`
	// Seq is the source event's flight-recorder sequence number. For a
	// synthesized severed step it is the partner's agent_reaped Seq.
	Seq          int64 `json:"seq"`
	TimeUnixNano int64 `json:"time_unix_nano"`
	// Partner is the other agent for matched/repaired steps, the reaped
	// peer for severed steps, and -1 otherwise.
	Partner int    `json:"partner"`
	Job     string `json:"job,omitempty"`
	// Trace and Span are the causal IDs stamped on the source event.
	Trace string `json:"trace,omitempty"`
	Span  string `json:"span,omitempty"`
	// SinceNS is the wall-clock latency since the previous step (0 for
	// the first).
	SinceNS int64 `json:"since_ns"`
}

// Journey is one agent's reconstructed timeline.
type Journey struct {
	Agent int    `json:"agent"`
	Job   string `json:"job,omitempty"`
	// Trace is the journey's home trace ID — the first non-empty step
	// trace. Steps stamped with a different trace are reported as
	// orphans in Problems.
	Trace string `json:"trace,omitempty"`
	Steps []Step `json:"steps"`
	// AdmitWaitNS is the queued → admitted latency, MatchWaitNS the
	// admitted → first assignment latency, LifetimeNS first → last step.
	AdmitWaitNS int64 `json:"admit_wait_ns"`
	MatchWaitNS int64 `json:"match_wait_ns"`
	LifetimeNS  int64 `json:"lifetime_ns"`
	// Reaped marks a terminal journey; a false value on a finished log
	// means the agent was still live when the stream ended.
	Reaped bool `json:"reaped"`
	// Problems lists lifecycle-order violations and orphaned trace IDs;
	// empty means the journey is complete and gap-free.
	Problems []string `json:"problems,omitempty"`
}

// agentState is the builder's mutable per-agent fold state.
type agentState struct {
	j       Journey
	partner int  // current partner, -1 when none
	paired  bool // has a standing pair assignment
}

// Builder folds events into journeys. Safe for one writer (Observe on
// the recording goroutine) and concurrent readers; all accessors return
// deep copies. A nil *Builder is a valid no-op observer.
type Builder struct {
	mu     sync.Mutex
	agents map[int]*agentState
	order  []int // agent IDs in first-seen order
	// repairEpochs marks epochs that ran an incremental repair round,
	// which is what lets a mid-epoch re-assignment count as "repaired"
	// rather than a routine new epoch's matching.
	repairEpochs map[int]bool
	lastNano     int64 // latest event time seen, closes live spans in exports
}

// NewBuilder returns an empty Builder, ready for Observe or AddObserver.
func NewBuilder() *Builder {
	return &Builder{
		agents:       make(map[int]*agentState),
		repairEpochs: make(map[int]bool),
	}
}

// Build folds a complete event slice (a decoded -events-out log) into a
// Builder. The offline twin of the live AddObserver path.
func Build(events []telemetry.Event) *Builder {
	b := NewBuilder()
	for _, e := range events {
		b.Observe(e)
	}
	return b
}

// Observe folds one event. Non-lifecycle events (epoch bookkeeping,
// faults, snapshots) only advance the clock; events recorded off the
// coordinator goroutine carry injector keys, not agent IDs, and are
// ignored exactly as the audit engine ignores them.
func (b *Builder) Observe(e telemetry.Event) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if e.TimeUnixNano > b.lastNano {
		b.lastNano = e.TimeUnixNano
	}
	switch e.Type {
	case telemetry.EventAgentQueued:
		st := b.state(e.Agent)
		st.j.Job = e.Job
		b.step(st, e, StateQueued, -1)
	case telemetry.EventAgentRegistered:
		st := b.state(e.Agent)
		if st.j.Job == "" {
			st.j.Job = e.Job
		}
		b.step(st, e, StateAdmitted, -1)
	case telemetry.EventPairMatched:
		b.assign(e, e.Agent, e.Partner)
		b.assign(e, e.Partner, e.Agent)
	case telemetry.EventAgentUnpaired:
		st := b.state(e.Agent)
		st.paired, st.partner = false, -1
		b.step(st, e, StateUnpaired, -1)
	case telemetry.EventAgentReaped:
		st := b.state(e.Agent)
		st.j.Reaped = true
		b.step(st, e, StateReaped, -1)
		// Sever the surviving half of a standing pair: its colocation
		// ended here even though no event names it directly.
		if st.paired {
			if p, ok := b.agents[st.partner]; ok && !p.j.Reaped && p.paired && p.partner == e.Agent {
				p.paired, p.partner = false, -1
				b.step(p, e, StateSevered, e.Agent)
			}
		}
		st.paired, st.partner = false, -1
	case telemetry.EventRematchRound:
		if e.Kind == "repair" {
			b.repairEpochs[e.Epoch] = true
		}
	}
}

// assign records one side of a pair_matched event. A re-assignment is
// "repaired" when it heals a severed pair, or replaces a standing one
// inside an epoch that ran a repair round; otherwise it is a routine
// "matched".
func (b *Builder) assign(e telemetry.Event, agent, partner int) {
	st := b.state(agent)
	state := StateMatched
	if n := len(st.j.Steps); n > 0 {
		last := st.j.Steps[n-1].State
		if last == StateSevered || (st.paired && b.repairEpochs[e.Epoch]) {
			state = StateRepaired
		}
	}
	st.paired, st.partner = true, partner
	b.step(st, e, state, partner)
}

func (b *Builder) state(agent int) *agentState {
	st, ok := b.agents[agent]
	if !ok {
		st = &agentState{partner: -1}
		st.j.Agent = agent
		b.agents[agent] = st
		b.order = append(b.order, agent)
	}
	return st
}

func (b *Builder) step(st *agentState, e telemetry.Event, state State, partner int) {
	s := Step{
		State: state, Epoch: e.Epoch, Seq: e.Seq,
		TimeUnixNano: e.TimeUnixNano, Partner: partner,
		Job: e.Job, Trace: e.Trace, Span: e.Span,
	}
	if n := len(st.j.Steps); n > 0 {
		s.SinceNS = s.TimeUnixNano - st.j.Steps[n-1].TimeUnixNano
	}
	if st.j.Trace == "" {
		st.j.Trace = e.Trace
	}
	st.j.Steps = append(st.j.Steps, s)
}

// Agents returns every agent ID seen, ascending.
func (b *Builder) Agents() []int {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	ids := append([]int(nil), b.order...)
	sort.Ints(ids)
	return ids
}

// Journey returns the agent's journey, or false if the agent was never
// seen. The copy is deep; the caller may keep it across later folds.
func (b *Builder) Journey(agent int) (Journey, bool) {
	if b == nil {
		return Journey{}, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st, ok := b.agents[agent]
	if !ok {
		return Journey{}, false
	}
	return finish(st.j), true
}

// Journeys returns every journey, ordered by agent ID.
func (b *Builder) Journeys() []Journey {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Journey, 0, len(b.agents))
	for _, id := range b.order {
		out = append(out, finish(b.agents[id].j))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Agent < out[j].Agent })
	return out
}

// Slowest returns up to n journeys ranked by admit wait (descending),
// breaking ties by match wait, then by agent ID — the journeys behind a
// fat admit-wait tail, in the order an operator should read them.
func (b *Builder) Slowest(n int) []Journey {
	all := b.Journeys()
	sort.Slice(all, func(i, j int) bool {
		a, c := all[i], all[j]
		if a.AdmitWaitNS != c.AdmitWaitNS {
			return a.AdmitWaitNS > c.AdmitWaitNS
		}
		if a.MatchWaitNS != c.MatchWaitNS {
			return a.MatchWaitNS > c.MatchWaitNS
		}
		return a.Agent < c.Agent
	})
	if n >= 0 && len(all) > n {
		all = all[:n]
	}
	return all
}

// LastTimeUnixNano reports the latest event time folded so far — the
// "now" that closes still-open journey intervals in exports.
func (b *Builder) LastTimeUnixNano() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastNano
}

// finish deep-copies the folded journey and derives its waits and
// problems.
func finish(j Journey) Journey {
	j.Steps = append([]Step(nil), j.Steps...)
	j.Problems = nil
	var queuedAt, admittedAt int64
	haveQueued, haveAdmitted := false, false
	for i, s := range j.Steps {
		switch s.State {
		case StateQueued:
			queuedAt, haveQueued = s.TimeUnixNano, true
		case StateAdmitted:
			if haveQueued && !haveAdmitted {
				j.AdmitWaitNS = s.TimeUnixNano - queuedAt
			}
			admittedAt, haveAdmitted = s.TimeUnixNano, true
		case StateMatched, StateUnpaired:
			if haveAdmitted && j.MatchWaitNS == 0 {
				j.MatchWaitNS = s.TimeUnixNano - admittedAt
			}
		}
		if i > 0 {
			j.LifetimeNS = s.TimeUnixNano - j.Steps[0].TimeUnixNano
		}
	}
	j.Problems = problems(j)
	return j
}

// problems checks the journey against the lifecycle the coordinator
// promises: queued first, admitted second, assignments only in between
// admission and reaping, severed only off a standing pair, nothing
// after reaped, monotone sequence numbers, and every step inside the
// journey's home trace.
func problems(j Journey) []string {
	var out []string
	add := func(format string, args ...any) {
		out = append(out, fmt.Sprintf(format, args...))
	}
	admitted, reaped, paired := false, false, false
	var lastSeq int64 = -1
	for i, s := range j.Steps {
		if s.Seq < lastSeq {
			add("step %d (%s) seq %d before predecessor's %d", i, s.State, s.Seq, lastSeq)
		}
		lastSeq = s.Seq
		if reaped {
			add("step %d (%s) after reaped", i, s.State)
		}
		switch s.State {
		case StateQueued:
			if i != 0 {
				add("queued at step %d, not first", i)
			}
		case StateAdmitted:
			if i != 1 {
				add("admitted at step %d, not immediately after queued", i)
			}
			admitted = true
		case StateMatched, StateRepaired:
			if !admitted {
				add("step %d (%s) before admission", i, s.State)
			}
			paired = true
		case StateUnpaired:
			if !admitted {
				add("step %d (unpaired) before admission", i)
			}
			paired = false
		case StateSevered:
			if !paired {
				add("step %d (severed) without a standing pair", i)
			}
			paired = false
		case StateReaped:
			reaped = true
		}
		if s.Trace != "" && j.Trace != "" && s.Trace != j.Trace {
			add("step %d (%s) orphaned trace %s (journey trace %s)", i, s.State, s.Trace, j.Trace)
		}
	}
	if len(j.Steps) > 0 && !admitted && !reaped {
		// Queued-only journeys are routine on a truncated live view, so
		// only a *finished* journey missing admission is flagged — and a
		// reaped-but-never-admitted journey already fails the step-order
		// checks above.
		if j.Reaped {
			add("reaped without admission")
		}
	}
	return out
}

// Render writes the journey as a human-readable timeline.
func (j Journey) Render(w io.Writer) {
	fmt.Fprintf(w, "agent %d", j.Agent)
	if j.Job != "" {
		fmt.Fprintf(w, " (%s)", j.Job)
	}
	if j.Trace != "" {
		fmt.Fprintf(w, " trace %s", j.Trace)
	}
	fmt.Fprintf(w, "  admit_wait %s  match_wait %s  lifetime %s",
		time.Duration(j.AdmitWaitNS), time.Duration(j.MatchWaitNS), time.Duration(j.LifetimeNS))
	if j.Reaped {
		fmt.Fprint(w, "  [reaped]")
	}
	fmt.Fprintln(w)
	for _, s := range j.Steps {
		fmt.Fprintf(w, "  seq %-6d e%-3d %-9s", s.Seq, s.Epoch, s.State)
		if s.Partner >= 0 {
			fmt.Fprintf(w, " partner %-5d", s.Partner)
		} else {
			fmt.Fprintf(w, "              ")
		}
		fmt.Fprintf(w, " +%s", time.Duration(s.SinceNS))
		if s.Span != "" {
			fmt.Fprintf(w, "  span %s", s.Span)
		}
		fmt.Fprintln(w)
	}
	for _, p := range j.Problems {
		fmt.Fprintf(w, "  !! %s\n", p)
	}
}

// String is Render into a string.
func (j Journey) String() string {
	var sb strings.Builder
	j.Render(&sb)
	return sb.String()
}

// AppendChromeEvents flattens journeys onto one Chrome trace process:
// each agent is a thread (tid = agent ID), each step a complete event
// lasting until the next step — the final step runs to nowNano (pass
// the builder's LastTimeUnixNano, or the log's last event time). Pair
// it with telemetry.AppendSpanEvents on other pids for a merged
// multi-process trace.
func AppendChromeEvents(out *[]telemetry.ChromeEvent, journeys []Journey, epochNano int64, pid int, nowNano int64) {
	*out = append(*out, telemetry.ProcessNameEvent(pid, "agent journeys"))
	for _, j := range journeys {
		name := fmt.Sprintf("agent %d", j.Agent)
		if j.Job != "" {
			name += " (" + j.Job + ")"
		}
		*out = append(*out, telemetry.ThreadNameEvent(pid, j.Agent, name))
		for i, s := range j.Steps {
			end := nowNano
			if i+1 < len(j.Steps) {
				end = j.Steps[i+1].TimeUnixNano
			}
			ts := (s.TimeUnixNano - epochNano) / 1e3
			if ts < 0 {
				ts = 0
			}
			dur := (end - s.TimeUnixNano) / 1e3
			if dur < 0 {
				dur = 0
			}
			ev := telemetry.ChromeEvent{
				Name: string(s.State), Cat: "journey", Ph: "X",
				TS: ts, Dur: dur, PID: pid, TID: j.Agent,
				Args: map[string]any{"seq": s.Seq, "epoch": s.Epoch},
			}
			if s.Partner >= 0 {
				ev.Args["partner"] = s.Partner
			}
			if s.Trace != "" {
				ev.Args["trace"] = s.Trace
				ev.Args["span"] = s.Span
			}
			*out = append(*out, ev)
		}
	}
}

// EpochNano returns the earliest step time across journeys — the time
// origin for AppendChromeEvents. Zero when no journey has steps.
func EpochNano(journeys []Journey) int64 {
	var min int64
	for _, j := range journeys {
		for _, s := range j.Steps {
			if min == 0 || s.TimeUnixNano < min {
				min = s.TimeUnixNano
			}
		}
	}
	return min
}
