package journey

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"cooper/internal/telemetry"
)

// ev is a shorthand event constructor: lifecycle events in tests differ
// only in the fields that matter.
func ev(seq int64, t telemetry.EventType, epoch, agent, partner int, nano int64) telemetry.Event {
	return telemetry.Event{
		Seq: seq, TimeUnixNano: nano, Type: t,
		Epoch: epoch, Agent: agent, Partner: partner,
		Trace: "aaaaaaaaaaaaaaaa", Span: "bbbbbbbbbbbbbbbb",
	}
}

// TestJourneyFold drives one agent through the full lifecycle —
// queued, admitted, matched, severed by a partner reap, repaired, and
// finally reaped — and checks states, partners, waits, and latencies.
func TestJourneyFold(t *testing.T) {
	us := int64(1000) // 1µs in nanos
	events := []telemetry.Event{
		ev(0, telemetry.EventAgentQueued, 0, 7, -1, 10*us),
		ev(1, telemetry.EventAgentRegistered, 0, 7, -1, 15*us),
		ev(2, telemetry.EventAgentQueued, 0, 8, -1, 16*us),
		ev(3, telemetry.EventAgentRegistered, 0, 8, -1, 17*us),
		ev(4, telemetry.EventPairMatched, 0, 7, 8, 40*us),
		ev(5, telemetry.EventAgentReaped, 1, 8, -1, 90*us),
		// The repair round that heals the severed agent.
		func() telemetry.Event {
			e := ev(6, telemetry.EventRematchRound, 1, -1, -1, 95*us)
			e.Kind = "repair"
			return e
		}(),
		ev(7, telemetry.EventAgentQueued, 1, 9, -1, 96*us),
		ev(8, telemetry.EventAgentRegistered, 1, 9, -1, 97*us),
		ev(9, telemetry.EventPairMatched, 1, 7, 9, 100*us),
		ev(10, telemetry.EventAgentReaped, 2, 7, -1, 200*us),
	}
	b := Build(events)

	j, ok := b.Journey(7)
	if !ok {
		t.Fatal("agent 7 has no journey")
	}
	var states []State
	for _, s := range j.Steps {
		states = append(states, s.State)
	}
	want := []State{StateQueued, StateAdmitted, StateMatched, StateSevered, StateMatched, StateReaped}
	// Agent 7 was severed (partner 8 reaped), and the next assignment
	// follows a severed step, so it must be "repaired" — not matched.
	want[4] = StateRepaired
	if len(states) != len(want) {
		t.Fatalf("agent 7 states = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("agent 7 step %d = %s, want %s (all: %v)", i, states[i], want[i], states)
		}
	}
	if j.Steps[3].Partner != 8 || j.Steps[3].Seq != 5 {
		t.Errorf("severed step should carry the reaped partner and its seq: %+v", j.Steps[3])
	}
	if j.Steps[4].Partner != 9 {
		t.Errorf("repaired step partner = %d, want 9", j.Steps[4].Partner)
	}
	if j.AdmitWaitNS != 5*us {
		t.Errorf("admit wait = %d, want %d", j.AdmitWaitNS, 5*us)
	}
	if j.MatchWaitNS != 25*us {
		t.Errorf("match wait = %d, want %d", j.MatchWaitNS, 25*us)
	}
	if j.LifetimeNS != 190*us {
		t.Errorf("lifetime = %d, want %d", j.LifetimeNS, 190*us)
	}
	if !j.Reaped {
		t.Error("agent 7 should be reaped")
	}
	if len(j.Problems) != 0 {
		t.Errorf("clean journey reported problems: %v", j.Problems)
	}
	if j.Steps[2].SinceNS != 25*us {
		t.Errorf("matched step latency = %d, want %d", j.Steps[2].SinceNS, 25*us)
	}

	// Agent 8's journey ends at the reap; the sever lands on 7 only.
	j8, _ := b.Journey(8)
	last := j8.Steps[len(j8.Steps)-1]
	if last.State != StateReaped || len(j8.Problems) != 0 {
		t.Errorf("agent 8 journey = %v problems %v", j8.Steps, j8.Problems)
	}

	if got := b.Agents(); len(got) != 3 || got[0] != 7 || got[2] != 9 {
		t.Errorf("Agents() = %v, want [7 8 9]", got)
	}
	if _, ok := b.Journey(99); ok {
		t.Error("unknown agent should report no journey")
	}
}

// TestRepairedNeedsRepairRound pins the matched/repaired distinction:
// a routine next-epoch re-match of a standing pair stays "matched";
// only a repair round (or a sever) upgrades it.
func TestRepairedNeedsRepairRound(t *testing.T) {
	events := []telemetry.Event{
		ev(0, telemetry.EventAgentQueued, 0, 1, -1, 10),
		ev(1, telemetry.EventAgentRegistered, 0, 1, -1, 20),
		ev(2, telemetry.EventAgentQueued, 0, 2, -1, 30),
		ev(3, telemetry.EventAgentRegistered, 0, 2, -1, 40),
		ev(4, telemetry.EventPairMatched, 0, 1, 2, 50),
		ev(5, telemetry.EventPairMatched, 1, 1, 2, 60), // plain epoch 1: no repair round
	}
	b := Build(events)
	j, _ := b.Journey(1)
	if got := j.Steps[len(j.Steps)-1].State; got != StateMatched {
		t.Errorf("re-match without a repair round = %s, want matched", got)
	}

	// The same second assignment inside a repair epoch is "repaired".
	rr := ev(5, telemetry.EventRematchRound, 1, -1, -1, 55)
	rr.Kind = "repair"
	events[5].Seq = 6
	b = Build(append(events[:5:5], events[4], rr, events[5]))
	j, _ = b.Journey(1)
	if got := j.Steps[len(j.Steps)-1].State; got != StateRepaired {
		t.Errorf("re-match inside a repair epoch = %s, want repaired", got)
	}
}

// TestProblems checks the validator flags out-of-order lifecycles and
// orphaned traces.
func TestProblems(t *testing.T) {
	// Matched before admission.
	b := Build([]telemetry.Event{
		ev(0, telemetry.EventPairMatched, 0, 1, 2, 10),
	})
	j, _ := b.Journey(1)
	if len(j.Problems) == 0 {
		t.Error("match before admission should be a problem")
	}

	// Orphaned trace: one step stamped with a foreign trace ID.
	stray := ev(2, telemetry.EventPairMatched, 0, 3, 4, 30)
	stray.Trace = "ffffffffffffffff"
	b = Build([]telemetry.Event{
		ev(0, telemetry.EventAgentQueued, 0, 3, -1, 10),
		ev(1, telemetry.EventAgentRegistered, 0, 3, -1, 20),
		stray,
	})
	j, _ = b.Journey(3)
	found := false
	for _, p := range j.Problems {
		if strings.Contains(p, "orphaned trace") {
			found = true
		}
	}
	if !found {
		t.Errorf("foreign trace should be flagged as orphaned: %v", j.Problems)
	}

	// A queued-only journey on a live view is routine, not a problem.
	b = Build([]telemetry.Event{ev(0, telemetry.EventAgentQueued, 0, 5, -1, 10)})
	j, _ = b.Journey(5)
	if len(j.Problems) != 0 {
		t.Errorf("queued-only live journey should be clean: %v", j.Problems)
	}
}

// TestSlowest checks the ranking: admit wait descending, then match
// wait, then agent ID.
func TestSlowest(t *testing.T) {
	var events []telemetry.Event
	var seq int64
	add := func(agent int, queuedAt, admittedAt int64) {
		events = append(events,
			ev(seq, telemetry.EventAgentQueued, 0, agent, -1, queuedAt),
			ev(seq+1, telemetry.EventAgentRegistered, 0, agent, -1, admittedAt))
		seq += 2
	}
	add(1, 0, 100) // wait 100
	add(2, 0, 500) // wait 500 — slowest
	add(3, 0, 100) // wait 100, ties with 1, higher ID loses
	b := Build(events)
	got := b.Slowest(2)
	if len(got) != 2 || got[0].Agent != 2 || got[1].Agent != 1 {
		ids := []int{}
		for _, j := range got {
			ids = append(ids, j.Agent)
		}
		t.Fatalf("Slowest(2) = %v, want [2 1]", ids)
	}
	if len(b.Slowest(0)) != 0 || len(b.Slowest(10)) != 3 {
		t.Error("Slowest should clamp to the population")
	}
}

// TestLiveObserverMatchesOffline folds the same events live (Observe)
// and offline (Build) and requires identical JSON — the property that
// makes cooper-trace's offline reconstruction trustworthy.
func TestLiveObserverMatchesOffline(t *testing.T) {
	events := []telemetry.Event{
		ev(0, telemetry.EventAgentQueued, 0, 1, -1, 10),
		ev(1, telemetry.EventAgentRegistered, 0, 1, -1, 20),
		ev(2, telemetry.EventAgentQueued, 0, 2, -1, 21),
		ev(3, telemetry.EventAgentRegistered, 0, 2, -1, 22),
		ev(4, telemetry.EventPairMatched, 0, 1, 2, 30),
		ev(5, telemetry.EventAgentReaped, 1, 2, -1, 40),
	}
	live := NewBuilder()
	ring := telemetry.NewEventRing(16)
	ring.AddObserver(live.Observe)
	for _, e := range events {
		e := e
		ring.Record(e)
	}
	// Ring stamping rewrites Seq/time; fold the ring's actual contents
	// offline for the comparison.
	offline := Build(ring.Events())
	a, _ := json.Marshal(live.Journeys())
	b, _ := json.Marshal(offline.Journeys())
	if !bytes.Equal(a, b) {
		t.Errorf("live and offline folds differ:\n%s\n%s", a, b)
	}
}

// TestRenderAndChrome smoke-tests the text and Chrome exports.
func TestRenderAndChrome(t *testing.T) {
	b := Build([]telemetry.Event{
		ev(0, telemetry.EventAgentQueued, 0, 1, -1, 1000),
		ev(1, telemetry.EventAgentRegistered, 0, 1, -1, 2000),
		ev(2, telemetry.EventAgentQueued, 0, 2, -1, 2100),
		ev(3, telemetry.EventAgentRegistered, 0, 2, -1, 2200),
		ev(4, telemetry.EventPairMatched, 0, 1, 2, 3000),
	})
	js := b.Journeys()
	text := js[0].String()
	for _, want := range []string{"agent 1", "queued", "admitted", "matched", "partner 2", "trace aaaaaaaaaaaaaaaa"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q:\n%s", want, text)
		}
	}

	var evs []telemetry.ChromeEvent
	AppendChromeEvents(&evs, js, EpochNano(js), 1, b.LastTimeUnixNano())
	var buf bytes.Buffer
	if err := telemetry.WriteChromeEvents(&buf, evs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"thread_name"`, `"agent 1"`, `"matched"`, `"process_name"`} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome export missing %s:\n%s", want, out)
		}
	}
	// The first step starts at the time origin.
	if !strings.Contains(out, `"ts":0`) {
		t.Errorf("expected a ts-0 event at the origin:\n%s", out)
	}

	// Nil safety across the read API.
	var nilB *Builder
	nilB.Observe(telemetry.Event{})
	if nilB.Journeys() != nil || nilB.Agents() != nil || nilB.LastTimeUnixNano() != 0 {
		t.Error("nil builder reads should be empty")
	}
	if _, ok := nilB.Journey(1); ok {
		t.Error("nil builder should have no journeys")
	}
}
