package sparklog

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestGenerateBasics(t *testing.T) {
	events, err := Generate(GenerateConfig{JobID: 3, TaskRate: 10, DurationS: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tasks, stages, jobs := 0, 0, 0
	prev := int64(-1)
	for _, e := range events {
		if e.TimeMS < prev {
			t.Fatalf("events out of order at %v", e)
		}
		prev = e.TimeMS
		switch e.Type {
		case TaskEnd:
			tasks++
			if e.JobID != 3 {
				t.Fatalf("wrong job id: %+v", e)
			}
		case StageCompleted:
			stages++
		case JobEnd:
			jobs++
		}
	}
	// 10 tasks/s for 10s = ~99 tasks (last gap crosses the end).
	if tasks < 95 || tasks > 100 {
		t.Errorf("tasks = %d, want ~99", tasks)
	}
	if jobs != 1 {
		t.Errorf("job end events = %d", jobs)
	}
	if stages == 0 {
		t.Error("no stage completions")
	}
}

func TestGenerateStageBoundaries(t *testing.T) {
	events, err := Generate(GenerateConfig{TaskRate: 100, DurationS: 10, TasksPerStage: 50}, nil)
	if err != nil {
		t.Fatal(err)
	}
	stageIDs := make(map[int]int) // stage -> tasks
	for _, e := range events {
		if e.Type == TaskEnd {
			stageIDs[e.StageID]++
		}
	}
	for s, n := range stageIDs {
		if n > 50 {
			t.Errorf("stage %d has %d tasks, cap 50", s, n)
		}
	}
	if len(stageIDs) < 19 {
		t.Errorf("expected ~20 stages, got %d", len(stageIDs))
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenerateConfig{TaskRate: 0, DurationS: 1}, nil); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := Generate(GenerateConfig{TaskRate: 1, DurationS: 0}, nil); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := Generate(GenerateConfig{TaskRate: 1, DurationS: 1, Jitter: 1.5}, nil); err == nil {
		t.Error("excess jitter accepted")
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	events, err := Generate(GenerateConfig{JobID: 7, TaskRate: 25, DurationS: 20}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, events); err != nil {
		t.Fatal(err)
	}
	m, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.JobID != 7 {
		t.Errorf("job id = %d", m.JobID)
	}
	if m.JobsEnded != 1 {
		t.Errorf("jobs ended = %d", m.JobsEnded)
	}
	if math.Abs(m.TaskThroughput-25) > 1 {
		t.Errorf("recovered throughput %v, want ~25", m.TaskThroughput)
	}
	if math.Abs(m.DurationS-20) > 0.5 {
		t.Errorf("duration %v, want ~20", m.DurationS)
	}
}

func TestParseToleratesGarbage(t *testing.T) {
	log := `{"Event":"SparkListenerTaskEnd","Timestamp":1000,"Job ID":1,"Task ID":0}
not json at all
{"Event":"SparkListenerEnvironmentUpdate","Timestamp":1500}

{"Event":"SparkListenerJobEnd","Timestamp":2000,"Job ID":1}`
	m, err := Parse(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if m.Tasks != 1 || m.JobsEnded != 1 {
		t.Errorf("metrics = %+v", m)
	}
	if m.DurationS != 2 {
		t.Errorf("duration = %v, want 2", m.DurationS)
	}
}

func TestParseEmptyLog(t *testing.T) {
	if _, err := Parse(strings.NewReader("")); err == nil {
		t.Error("empty log accepted")
	}
	if _, err := Parse(strings.NewReader("junk\nmore junk")); err == nil {
		t.Error("all-garbage log accepted")
	}
}

func TestMeasureThroughputRecoversRate(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, rate := range []float64{5, 50, 500} {
		got, err := MeasureThroughput(rate, 60, r)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-rate) > rate*0.05 {
			t.Errorf("rate %v measured as %v", rate, got)
		}
	}
}

func TestMeasureThroughputQuantization(t *testing.T) {
	// A very slow job over a short window under-resolves: whole tasks
	// only — the measurement noise the paper's logging path carries.
	r := rand.New(rand.NewSource(2))
	got, err := MeasureThroughput(0.05, 10, r)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		// With 0.05 tasks/s over 10s the expected count is 0.5 tasks;
		// most seeds observe nothing.
		t.Logf("observed %v tasks/s from a half-task window (seed-dependent)", got)
	}
}

func TestMeasureThroughputJitterDeterministic(t *testing.T) {
	a, err1 := MeasureThroughput(20, 30, rand.New(rand.NewSource(3)))
	b, err2 := MeasureThroughput(20, 30, rand.New(rand.NewSource(3)))
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if a != b {
		t.Error("same seed should measure identically")
	}
}
