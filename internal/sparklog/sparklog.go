// Package sparklog emulates the paper's Spark measurement path: the
// authors modified Spark 1.6.0 to log task, stage and job completion, and
// measured analytics throughput by parsing those logs. This package
// generates synthetic event logs for a job executing at a given task
// rate, serializes them as JSON lines (the Spark event-log format's
// shape), and parses logs back into throughput metrics — so the profiler
// can measure Spark-suite jobs the way the paper did, quantization noise
// and all.
package sparklog

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
)

// Event is one log record. Type is one of the Spark listener event names
// the paper's instrumentation captured.
type Event struct {
	Type    string `json:"Event"`
	TimeMS  int64  `json:"Timestamp"`
	JobID   int    `json:"Job ID"`
	StageID int    `json:"Stage ID,omitempty"`
	TaskID  int    `json:"Task ID,omitempty"`
}

// Event type names (mirroring Spark's listener events).
const (
	TaskEnd        = "SparkListenerTaskEnd"
	StageCompleted = "SparkListenerStageCompleted"
	JobEnd         = "SparkListenerJobEnd"
)

// GenerateConfig shapes a synthetic run.
type GenerateConfig struct {
	// JobID labels the job in the log.
	JobID int
	// TaskRate is the mean completed tasks per second.
	TaskRate float64
	// DurationS is the run length in seconds.
	DurationS float64
	// TasksPerStage closes a stage after this many tasks (default 200).
	TasksPerStage int
	// Jitter in [0,1) randomizes inter-task gaps (0 = perfectly regular).
	Jitter float64
}

// Generate produces the event sequence for one run. Events are ordered by
// timestamp; the final event is the JobEnd at the run's end.
func Generate(cfg GenerateConfig, r *rand.Rand) ([]Event, error) {
	if cfg.TaskRate <= 0 || cfg.DurationS <= 0 {
		return nil, fmt.Errorf("sparklog: rate and duration must be positive")
	}
	if cfg.TasksPerStage <= 0 {
		cfg.TasksPerStage = 200
	}
	if cfg.Jitter < 0 || cfg.Jitter >= 1 {
		return nil, fmt.Errorf("sparklog: jitter %v outside [0,1)", cfg.Jitter)
	}
	var events []Event
	meanGapMS := 1000 / cfg.TaskRate
	endMS := int64(cfg.DurationS * 1000)
	t := 0.0
	task, stage, inStage := 0, 0, 0
	for {
		gap := meanGapMS
		if cfg.Jitter > 0 && r != nil {
			gap *= 1 + cfg.Jitter*(2*r.Float64()-1)
		}
		t += gap
		if int64(t) >= endMS {
			break
		}
		events = append(events, Event{
			Type: TaskEnd, TimeMS: int64(t), JobID: cfg.JobID,
			StageID: stage, TaskID: task,
		})
		task++
		inStage++
		if inStage == cfg.TasksPerStage {
			events = append(events, Event{
				Type: StageCompleted, TimeMS: int64(t), JobID: cfg.JobID,
				StageID: stage,
			})
			stage++
			inStage = 0
		}
	}
	if inStage > 0 {
		events = append(events, Event{
			Type: StageCompleted, TimeMS: endMS, JobID: cfg.JobID, StageID: stage,
		})
	}
	events = append(events, Event{Type: JobEnd, TimeMS: endMS, JobID: cfg.JobID})
	return events, nil
}

// Write serializes events as JSON lines.
func Write(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// Metrics summarizes a parsed log.
type Metrics struct {
	JobID     int
	Tasks     int
	Stages    int
	JobsEnded int
	DurationS float64 // first event to JobEnd (or last event)
	// TaskThroughput is completed tasks per second — the paper's Spark
	// performance metric.
	TaskThroughput float64
}

// Parse reads a JSON-lines event log and computes throughput metrics. It
// tolerates unknown event types (real Spark logs carry many) and skips
// malformed lines, returning an error only if nothing parses.
func Parse(rd io.Reader) (Metrics, error) {
	scanner := bufio.NewScanner(rd)
	scanner.Buffer(make([]byte, 1<<16), 1<<20)
	var m Metrics
	var firstMS, lastMS int64 = -1, 0
	parsed := 0
	for scanner.Scan() {
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			continue
		}
		parsed++
		if firstMS < 0 || e.TimeMS < firstMS {
			firstMS = e.TimeMS
		}
		if e.TimeMS > lastMS {
			lastMS = e.TimeMS
		}
		switch e.Type {
		case TaskEnd:
			m.Tasks++
			m.JobID = e.JobID
		case StageCompleted:
			m.Stages++
		case JobEnd:
			m.JobsEnded++
			m.JobID = e.JobID
		}
	}
	if err := scanner.Err(); err != nil {
		return Metrics{}, err
	}
	if parsed == 0 {
		return Metrics{}, fmt.Errorf("sparklog: no parsable events")
	}
	// Duration runs from time zero of the run to the last event: the gap
	// before the first event is part of the first task's latency.
	if lastMS > 0 {
		m.DurationS = float64(lastMS) / 1000
	}
	if m.DurationS > 0 {
		m.TaskThroughput = float64(m.Tasks) / m.DurationS
	}
	return m, nil
}

// MeasureThroughput generates a run at the given task rate and measures
// it back through the log path, returning the observed tasks/second —
// the end-to-end measurement the profiler uses for Spark jobs. The
// round trip quantizes (whole tasks only), so short runs of slow jobs
// under-resolve exactly as the paper's coarse-grained logging would.
func MeasureThroughput(taskRate, durationS float64, r *rand.Rand) (float64, error) {
	events, err := Generate(GenerateConfig{
		TaskRate:  taskRate,
		DurationS: durationS,
		Jitter:    0.3,
	}, r)
	if err != nil {
		return 0, err
	}
	var buf bytes.Buffer
	if err := Write(&buf, events); err != nil {
		return 0, err
	}
	m, err := Parse(&buf)
	if err != nil {
		return 0, err
	}
	return m.TaskThroughput, nil
}
