package sparklog

import (
	"strings"
	"testing"
)

// FuzzParse ensures the log parser never panics and keeps its metrics
// internally consistent on arbitrary input.
func FuzzParse(f *testing.F) {
	f.Add(`{"Event":"SparkListenerTaskEnd","Timestamp":1000,"Job ID":1,"Task ID":0}`)
	f.Add(`{"Event":"SparkListenerJobEnd","Timestamp":2000,"Job ID":1}`)
	f.Add("")
	f.Add("garbage\n{\"Event\":\"SparkListenerStageCompleted\",\"Timestamp\":-5}")
	f.Add(`{"Event":"SparkListenerTaskEnd","Timestamp":9e18}`)
	f.Fuzz(func(t *testing.T, input string) {
		m, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		if m.Tasks < 0 || m.Stages < 0 || m.JobsEnded < 0 {
			t.Fatalf("negative counts: %+v", m)
		}
		if m.TaskThroughput < 0 {
			t.Fatalf("negative throughput: %+v", m)
		}
		if m.TaskThroughput > 0 && m.DurationS <= 0 {
			t.Fatalf("throughput without duration: %+v", m)
		}
	})
}
