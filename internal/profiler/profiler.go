// Package profiler implements Cooper's system profiler: it runs jobs —
// standalone and in sampled colocations — on the simulated CMP, records
// their throughput and memory counters, and serves the measurements
// through a queryable database, mirroring the paper's setup of modified
// Spark logging, perf stat runtimes, and once-per-second MSR reads stored
// in a Google-wide-profiling-style database.
//
// Profiling is deliberately sparse: measuring every pair of jobs is
// intractable at datacenter scale, so the profiler samples a fraction of
// the colocation space and the preference predictor (package recommend)
// fills in the rest.
package profiler

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"cooper/internal/arch"
	"cooper/internal/parallel"
	"cooper/internal/sparklog"
	"cooper/internal/telemetry"
	"cooper/internal/workload"
)

// Record is one profiled run: a job, optionally a co-runner, and the
// performance observed.
type Record struct {
	// Seq is the record's logical timestamp: a monotonically increasing
	// sequence number assigned by the database (deterministic, unlike
	// wall-clock stamps).
	Seq int64
	// Job is the profiled job's name; CoRunner is empty for standalone
	// runs.
	Job      string
	CoRunner string
	// Machine identifies the CMP the run executed on.
	Machine string

	ThroughputIPS  float64 // measured mean instructions/s
	BandwidthGBps  float64 // measured mean memory bandwidth
	MissRatio      float64 // mean LLC miss ratio
	MemUtilization float64 // mean memory channel utilization
}

// Query filters database records. Zero fields match everything.
type Query struct {
	Job      string // exact job name
	CoRunner string // exact co-runner name; "solo" matches standalone runs
	Machine  string // exact machine ID
	Since    int64  // minimum Seq, inclusive
	Until    int64  // maximum Seq, inclusive; 0 means no upper bound
}

// Solo is the Query.CoRunner sentinel matching standalone records.
const Solo = "solo"

// Database stores profiling records and answers queries. Safe for
// concurrent use; the paper's agents query it while the profiler appends.
type Database struct {
	mu      sync.RWMutex
	records []Record
	nextSeq int64
}

// NewDatabase returns an empty database.
func NewDatabase() *Database { return &Database{} }

// Insert appends a record, assigning its sequence number, and returns it.
func (db *Database) Insert(r Record) Record {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.nextSeq++
	r.Seq = db.nextSeq
	db.records = append(db.records, r)
	return r
}

// Len returns the number of stored records.
func (db *Database) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.records)
}

// Select returns all records matching q, in insertion order.
func (db *Database) Select(q Query) []Record {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []Record
	for _, r := range db.records {
		if q.Job != "" && r.Job != q.Job {
			continue
		}
		if q.CoRunner == Solo {
			if r.CoRunner != "" {
				continue
			}
		} else if q.CoRunner != "" && r.CoRunner != q.CoRunner {
			continue
		}
		if q.Machine != "" && r.Machine != q.Machine {
			continue
		}
		if r.Seq < q.Since {
			continue
		}
		if q.Until != 0 && r.Seq > q.Until {
			continue
		}
		out = append(out, r)
	}
	return out
}

// Profiler executes profiling runs on a simulated machine and stores the
// results.
type Profiler struct {
	Machine arch.CMP
	Sim     arch.SimConfig
	DB      *Database
	// MeasureNoise is the relative standard deviation of multiplicative
	// measurement noise applied to observed throughput (the paper notes
	// run-to-run variance occasionally makes colocated runs look faster
	// than standalone ones). Zero disables it.
	MeasureNoise float64
	// UseSparkLogs measures Spark-suite jobs the way the paper did:
	// generate the instrumented engine's task/stage/job completion log
	// for the run and recover throughput by parsing it, picking up the
	// whole-task quantization that path carries. PARSEC jobs keep the
	// direct (perf-stat-style) measurement.
	UseSparkLogs bool
	// Tel, when non-nil, receives the Campaign's sample and profile phase
	// spans plus the profile.records counter and profile.sample_fraction
	// gauge. Nil disables tracing.
	Tel *telemetry.Telemetry
	// Workers bounds the campaign's fan-out across simulated profiling
	// runs; <= 0 means GOMAXPROCS. Each run draws from its own RNG
	// seeded by the run index, so results are bit-identical at any
	// worker count.
	Workers int

	mu   sync.Mutex
	seed int64
	rng  *rand.Rand
}

// InstructionsPerTask converts instruction throughput into Spark task
// throughput for the log-based measurement path. The catalog's Spark jobs
// retire tasks of roughly a billion instructions.
const InstructionsPerTask = 1e9

// measureIPS converts a simulated throughput into the observed one,
// routing Spark jobs through the event-log path when enabled, drawing
// any measurement noise from r.
func (p *Profiler) measureIPS(job workload.Job, ips float64, r *rand.Rand) float64 {
	if p.UseSparkLogs && job.Suite == workload.Spark && ips > 0 {
		rate := ips / InstructionsPerTask
		got, err := sparklog.MeasureThroughput(rate, job.RuntimeS, r)
		if err == nil && got > 0 {
			return got * InstructionsPerTask
		}
	}
	return p.noisy(ips, r)
}

// New returns a profiler for machine m writing into db, with deterministic
// noise driven by seed.
func New(m arch.CMP, db *Database, seed int64) *Profiler {
	return &Profiler{
		Machine:      m,
		Sim:          arch.DefaultSimConfig(),
		DB:           db,
		MeasureNoise: 0.005,
		seed:         seed,
		rng:          rand.New(rand.NewSource(seed)),
	}
}

func (p *Profiler) noisy(x float64, r *rand.Rand) float64 {
	if p.MeasureNoise == 0 {
		return x
	}
	return x * (1 + r.NormFloat64()*p.MeasureNoise)
}

// runStandalone simulates job alone on the machine, drawing simulation
// and measurement noise from r, and returns the unrecorded observation.
func (p *Profiler) runStandalone(job workload.Job, r *rand.Rand) Record {
	res := p.Machine.SimulateSolo(job.Model, p.Sim, r)
	return Record{
		Job:            job.Name,
		Machine:        p.Machine.Name,
		ThroughputIPS:  p.measureIPS(job, res.MeanIPS(), r),
		BandwidthGBps:  res.MeanBandwidth() / 1e9,
		MissRatio:      meanMiss(res),
		MemUtilization: meanUtil(res),
	}
}

// runPair simulates the colocation of a and b, drawing all noise from r,
// and returns both unrecorded observations.
func (p *Profiler) runPair(a, b workload.Job, r *rand.Rand) (Record, Record) {
	resA, resB := p.Machine.SimulatePair(a.Model, b.Model, p.Sim, r)
	recA := Record{
		Job: a.Name, CoRunner: b.Name, Machine: p.Machine.Name,
		ThroughputIPS:  p.measureIPS(a, resA.MeanIPS(), r),
		BandwidthGBps:  resA.MeanBandwidth() / 1e9,
		MissRatio:      meanMiss(resA),
		MemUtilization: meanUtil(resA),
	}
	recB := Record{
		Job: b.Name, CoRunner: a.Name, Machine: p.Machine.Name,
		ThroughputIPS:  p.measureIPS(b, resB.MeanIPS(), r),
		BandwidthGBps:  resB.MeanBandwidth() / 1e9,
		MissRatio:      meanMiss(resB),
		MemUtilization: meanUtil(resB),
	}
	return recA, recB
}

// ProfileStandalone runs job alone on the machine and records the result.
func (p *Profiler) ProfileStandalone(job workload.Job) Record {
	p.mu.Lock()
	rec := p.runStandalone(job, p.rng)
	p.mu.Unlock()
	return p.DB.Insert(rec)
}

// ProfilePair colocates jobs a and b on the machine and records both
// sides' observations.
func (p *Profiler) ProfilePair(a, b workload.Job) (Record, Record) {
	p.mu.Lock()
	recA, recB := p.runPair(a, b, p.rng)
	p.mu.Unlock()
	return p.DB.Insert(recA), p.DB.Insert(recB)
}

func meanMiss(r arch.RunResult) float64 {
	if len(r.Samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range r.Samples {
		sum += s.MissRatio
	}
	return sum / float64(len(r.Samples))
}

func meanUtil(r arch.RunResult) float64 {
	if len(r.Samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range r.Samples {
		sum += s.MemUtilization
	}
	return sum / float64(len(r.Samples))
}

// Campaign profiles a catalog: every job standalone, plus a sampled
// fraction of the (unordered) colocation space. The sampled pairs are
// drawn without replacement. fraction is clamped to [0, 1]. Self-pairs
// (two instances of the same job) are part of the space, as two agents
// can run the same application.
func (p *Profiler) Campaign(jobs []workload.Job, fraction float64) error {
	return p.CampaignContext(context.Background(), jobs, fraction)
}

// CampaignContext runs Campaign with cancellation between and during the
// profiling fan-out. The measurement runs fan out across p.Workers
// workers; every run draws its simulation and measurement noise from a
// private RNG seeded by the profiler seed and the run's index, and the
// records land in the database in run order, so the database contents
// are bit-identical whatever the worker count.
func (p *Profiler) CampaignContext(ctx context.Context, jobs []workload.Job, fraction float64) error {
	if len(jobs) == 0 {
		return fmt.Errorf("profiler: empty catalog")
	}
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}

	// Sample phase: choose which colocations to measure. The shuffle
	// consumes the profiler's own stream serially, before any fan-out,
	// so the sampled set is worker-count independent too.
	sample := p.Tel.Phase(nil, "sample")
	type pair struct{ a, b int }
	var pairs []pair
	for i := range jobs {
		for j := i; j < len(jobs); j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	p.mu.Lock()
	p.rng.Shuffle(len(pairs), func(x, y int) { pairs[x], pairs[y] = pairs[y], pairs[x] })
	p.mu.Unlock()
	n := int(math.Round(fraction * float64(len(pairs))))
	sample.SetAttr("fraction", fraction)
	sample.SetAttr("space", len(pairs))
	sample.SetAttr("sampled", n)
	p.Tel.End(sample)
	p.Tel.Gauge("profile.sample_fraction").Set(fraction)

	// Profile phase: the runs — one per standalone job, one per sampled
	// pair — are mutually independent simulations, so they fan out.
	// Each run writes only its own slot; insertion happens afterwards in
	// run order so record sequence numbers stay deterministic.
	profile := p.Tel.Phase(nil, "profile")
	profile.SetAttr("workers", parallel.Workers(p.Workers))
	runs := len(jobs) + n
	out := make([][]Record, runs)
	err := parallel.ForEach(ctx, p.Workers, runs, func(i int) error {
		r := rand.New(rand.NewSource(parallel.SplitSeed(p.seed, int64(i))))
		if i < len(jobs) {
			out[i] = []Record{p.runStandalone(jobs[i], r)}
			return nil
		}
		pr := pairs[i-len(jobs)]
		recA, recB := p.runPair(jobs[pr.a], jobs[pr.b], r)
		out[i] = []Record{recA, recB}
		return nil
	})
	if err != nil {
		p.Tel.End(profile)
		return err
	}
	for _, recs := range out {
		for _, rec := range recs {
			p.DB.Insert(rec)
		}
	}
	records := len(jobs) + 2*n
	profile.SetAttr("standalone", len(jobs))
	profile.SetAttr("pairs", n)
	profile.SetAttr("records", records)
	p.Tel.End(profile)
	p.Tel.Counter("profile.records").Add(int64(records))
	return nil
}

// PenaltyMatrix assembles the job-level disutility matrix from the
// database: entry [i][j] is job i's penalty when colocated with job j,
// d = 1 - colocated/standalone throughput. Unprofiled colocations are
// NaN; the preference predictor fills them in. Penalties may be slightly
// negative under measurement noise, matching the paper's footnote.
func PenaltyMatrix(db *Database, jobs []workload.Job) ([][]float64, error) {
	n := len(jobs)
	idx := make(map[string]int, n)
	for i, j := range jobs {
		idx[j.Name] = i
	}

	solo := make([]float64, n)
	for i, j := range jobs {
		recs := db.Select(Query{Job: j.Name, CoRunner: Solo})
		if len(recs) == 0 {
			return nil, fmt.Errorf("profiler: no standalone profile for %s", j.Name)
		}
		var sum float64
		for _, r := range recs {
			sum += r.ThroughputIPS
		}
		solo[i] = sum / float64(len(recs))
	}

	d := make([][]float64, n)
	counts := make([][]int, n)
	for i := range d {
		d[i] = make([]float64, n)
		counts[i] = make([]int, n)
		for j := range d[i] {
			d[i][j] = math.NaN()
		}
	}
	for _, r := range db.Select(Query{}) {
		if r.CoRunner == "" {
			continue
		}
		i, ok1 := idx[r.Job]
		j, ok2 := idx[r.CoRunner]
		if !ok1 || !ok2 || solo[i] <= 0 {
			continue
		}
		pen := 1 - r.ThroughputIPS/solo[i]
		if counts[i][j] == 0 {
			d[i][j] = pen
		} else {
			// Running average across repeated measurements.
			d[i][j] = (d[i][j]*float64(counts[i][j]) + pen) / float64(counts[i][j]+1)
		}
		counts[i][j]++
	}
	return d, nil
}

// Sparsity returns the fraction of non-NaN entries in a penalty matrix.
func Sparsity(d [][]float64) float64 {
	total, known := 0, 0
	for _, row := range d {
		for _, v := range row {
			total++
			if !math.IsNaN(v) {
				known++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(known) / float64(total)
}

// DensePenalties computes the full job-level penalty matrix analytically
// (no sampling, no noise) — the oracle ground truth used to evaluate
// prediction accuracy and to drive experiments that assume perfect
// knowledge.
func DensePenalties(m arch.CMP, jobs []workload.Job) [][]float64 {
	d, _ := DensePenaltiesContext(context.Background(), m, jobs, 0, nil)
	return d
}

// DensePenaltiesContext is DensePenalties with a cancellation point, a
// worker budget for the O(n²) pair solves (<= 0 means GOMAXPROCS), and
// an optional pair cache. When cache is keyed to m, every solve is
// memoized through it — warming the cache for the epoch pipeline's
// assessment and dispatch phases. The solver is deterministic, so the
// result is identical at any worker count.
func DensePenaltiesContext(ctx context.Context, m arch.CMP, jobs []workload.Job, workers int, cache *arch.PairCache) ([][]float64, error) {
	n := len(jobs)
	useCache := cache.Keyed(m)
	solo := make([]float64, n)
	for i, j := range jobs {
		if useCache {
			solo[i] = cache.Solo(j.Name, j.Model).IPS
		} else {
			solo[i] = m.Solo(j.Model).IPS
		}
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	// Row i's worker owns cells d[i][j] and d[j][i] for j >= i; the cell
	// sets of distinct rows are disjoint, so no write races.
	err := parallel.ForEach(ctx, workers, n, func(i int) error {
		for j := i; j < n; j++ {
			var pi, pj arch.Perf
			if useCache {
				pi, pj = cache.Pair(jobs[i].Name, jobs[i].Model, jobs[j].Name, jobs[j].Model)
			} else {
				pi, pj = m.Pair(jobs[i].Model, jobs[j].Model)
			}
			d[i][j] = 1 - pi.IPS/solo[i]
			d[j][i] = 1 - pj.IPS/solo[j]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// ExpandToAgents lifts a job-level penalty matrix to the agent level for a
// population: agent a's penalty with agent b is its job's penalty with b's
// job (zero on the diagonal). The result is flat — one backing allocation
// with rows sliced out of it. Agents running the same job share the same
// expanded row up to the diagonal, so the gather through the population's
// row mapping happens once per distinct catalog job and every agent row
// is a single copy, not n map/bounds-checked lookups.
func ExpandToAgents(jobD [][]float64, jobs []workload.Job, pop workload.Population) ([][]float64, error) {
	idx := make(map[string]int, len(jobs))
	for i, j := range jobs {
		idx[j.Name] = i
	}
	n := len(pop.Jobs)
	rows := make([]int, n)
	for a, j := range pop.Jobs {
		i, ok := idx[j.Name]
		if !ok {
			return nil, fmt.Errorf("profiler: population job %q not in catalog", j.Name)
		}
		rows[a] = i
	}
	// One expanded row per catalog job actually present in the population:
	// expanded[r][b] = jobD[r][rows[b]].
	expanded := make([][]float64, len(jobs))
	for _, r := range rows {
		if expanded[r] != nil {
			continue
		}
		src := jobD[r]
		row := make([]float64, n)
		for b, rb := range rows {
			row[b] = src[rb]
		}
		expanded[r] = row
	}
	backing := make([]float64, n*n)
	d := make([][]float64, n)
	for a := 0; a < n; a++ {
		d[a] = backing[a*n : (a+1)*n]
		copy(d[a], expanded[rows[a]])
		d[a][a] = 0
	}
	return d, nil
}

// SortedJobNames returns the distinct job names in the database, sorted —
// a convenience for reports.
func SortedJobNames(db *Database) []string {
	seen := make(map[string]bool)
	for _, r := range db.Select(Query{}) {
		seen[r.Job] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
