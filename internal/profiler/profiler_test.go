package profiler

import (
	"math"
	"sync"
	"testing"

	"cooper/internal/arch"
	"cooper/internal/workload"
)

func testSetup(t *testing.T) (arch.CMP, []workload.Job, *Database, *Profiler) {
	t.Helper()
	cmp := arch.DefaultCMP()
	jobs, err := workload.Catalog(cmp)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	p := New(cmp, db, 1)
	// Short runs keep tests fast.
	p.Sim = arch.SimConfig{DurationS: 5, StepS: 1, PhaseNoise: 0.05, PhaseCorr: 0.5}
	return cmp, jobs, db, p
}

func TestProfileStandalone(t *testing.T) {
	_, jobs, db, p := testSetup(t)
	rec := p.ProfileStandalone(jobs[0])
	if rec.Job != jobs[0].Name || rec.CoRunner != "" {
		t.Errorf("record = %+v", rec)
	}
	if rec.ThroughputIPS <= 0 || rec.BandwidthGBps <= 0 {
		t.Errorf("non-positive measurements: %+v", rec)
	}
	if rec.Seq != 1 || db.Len() != 1 {
		t.Errorf("sequence/len wrong: seq=%d len=%d", rec.Seq, db.Len())
	}
}

func TestProfilePair(t *testing.T) {
	_, jobs, db, p := testSetup(t)
	corr, _ := workload.Find(jobs, "correlation")
	dedup, _ := workload.Find(jobs, "dedup")
	ra, rb := p.ProfilePair(dedup, corr)
	if ra.Job != "dedup" || ra.CoRunner != "correlation" {
		t.Errorf("record a = %+v", ra)
	}
	if rb.Job != "correlation" || rb.CoRunner != "dedup" {
		t.Errorf("record b = %+v", rb)
	}
	if db.Len() != 2 {
		t.Errorf("db len = %d", db.Len())
	}
}

func TestDatabaseSelect(t *testing.T) {
	_, jobs, db, p := testSetup(t)
	corr, _ := workload.Find(jobs, "correlation")
	dedup, _ := workload.Find(jobs, "dedup")
	p.ProfileStandalone(dedup)
	p.ProfilePair(dedup, corr)
	p.ProfilePair(corr, corr)

	if got := db.Select(Query{Job: "dedup"}); len(got) != 2 {
		t.Errorf("dedup records = %d, want 2", len(got))
	}
	if got := db.Select(Query{Job: "dedup", CoRunner: Solo}); len(got) != 1 {
		t.Errorf("dedup solo records = %d, want 1", len(got))
	}
	if got := db.Select(Query{CoRunner: "correlation"}); len(got) != 3 {
		t.Errorf("records with correlation co-runner = %d, want 3", len(got))
	}
	if got := db.Select(Query{Machine: "nonesuch"}); len(got) != 0 {
		t.Errorf("unknown machine matched %d records", len(got))
	}
	if got := db.Select(Query{Since: 2, Until: 3}); len(got) != 2 {
		t.Errorf("seq window matched %d records, want 2", len(got))
	}
}

func TestCampaignSparsity(t *testing.T) {
	_, jobs, db, p := testSetup(t)
	small := jobs[:8]
	if err := p.Campaign(small, 0.25); err != nil {
		t.Fatal(err)
	}
	d, err := PenaltyMatrix(db, small)
	if err != nil {
		t.Fatal(err)
	}
	got := Sparsity(d)
	// 25% of the 36 unordered pairs, each filling 1 or 2 of 64 entries.
	if got < 0.10 || got > 0.45 {
		t.Errorf("sparsity = %v, want near 0.25", got)
	}
}

func TestCampaignFull(t *testing.T) {
	_, jobs, db, p := testSetup(t)
	small := jobs[:6]
	if err := p.Campaign(small, 1.0); err != nil {
		t.Fatal(err)
	}
	d, err := PenaltyMatrix(db, small)
	if err != nil {
		t.Fatal(err)
	}
	if got := Sparsity(d); got != 1 {
		t.Errorf("full campaign sparsity = %v, want 1", got)
	}
	for i := range d {
		for j := range d[i] {
			if math.IsNaN(d[i][j]) {
				t.Fatalf("entry [%d][%d] still NaN", i, j)
			}
			if d[i][j] < -0.2 || d[i][j] > 1 {
				t.Errorf("penalty [%d][%d] = %v implausible", i, j, d[i][j])
			}
		}
	}
}

func TestCampaignClampsFraction(t *testing.T) {
	_, jobs, _, p := testSetup(t)
	if err := p.Campaign(jobs[:3], -0.5); err != nil {
		t.Fatal(err)
	}
	if err := p.Campaign(jobs[:3], 1.5); err != nil {
		t.Fatal(err)
	}
	if err := p.Campaign(nil, 0.5); err == nil {
		t.Error("empty catalog accepted")
	}
}

func TestPenaltyMatrixRequiresStandalone(t *testing.T) {
	_, jobs, db, p := testSetup(t)
	p.ProfilePair(jobs[0], jobs[1])
	if _, err := PenaltyMatrix(db, jobs[:2]); err == nil {
		t.Error("missing standalone profiles accepted")
	}
}

func TestDensePenaltiesStructure(t *testing.T) {
	cmp, jobs, _, _ := testSetup(t)
	d := DensePenalties(cmp, jobs)
	if len(d) != len(jobs) {
		t.Fatalf("matrix size %d", len(d))
	}
	// The paper's Figure 1 premise: penalties rise with the co-runner's
	// contentiousness. Check the trend for a sensitive victim.
	idx := func(name string) int {
		for i, j := range jobs {
			if j.Name == name {
				return i
			}
		}
		t.Fatalf("job %s missing", name)
		return -1
	}
	dedup := idx("dedup")
	if d[dedup][idx("swapt")] >= d[dedup][idx("correlation")] {
		t.Errorf("dedup penalty with swaptions (%v) should trail correlation (%v)",
			d[dedup][idx("swapt")], d[dedup][idx("correlation")])
	}
	for i := range d {
		for j := range d {
			if d[i][j] < -1e-9 || d[i][j] > 1 {
				t.Errorf("dense penalty [%d][%d] = %v out of range", i, j, d[i][j])
			}
		}
	}
}

func TestNoiselessPairMatchesDense(t *testing.T) {
	cmp, jobs, db, p := testSetup(t)
	p.MeasureNoise = 0
	p.Sim = arch.SimConfig{DurationS: 3, StepS: 1} // no phase noise
	small := jobs[:4]
	if err := p.Campaign(small, 1.0); err != nil {
		t.Fatal(err)
	}
	measured, err := PenaltyMatrix(db, small)
	if err != nil {
		t.Fatal(err)
	}
	dense := DensePenalties(cmp, small)
	for i := range dense {
		for j := range dense {
			if i == j {
				continue
			}
			if math.Abs(measured[i][j]-dense[i][j]) > 0.01 {
				t.Errorf("[%d][%d]: measured %v vs dense %v",
					i, j, measured[i][j], dense[i][j])
			}
		}
	}
}

func TestExpandToAgents(t *testing.T) {
	cmp, jobs, _, _ := testSetup(t)
	jobD := DensePenalties(cmp, jobs)
	pop := workload.Population{Jobs: []workload.Job{jobs[0], jobs[3], jobs[0]}}
	agentD, err := ExpandToAgents(jobD, jobs, pop)
	if err != nil {
		t.Fatal(err)
	}
	if agentD[0][1] != jobD[0][3] || agentD[1][0] != jobD[3][0] {
		t.Error("agent penalties should mirror job penalties")
	}
	if agentD[0][2] != jobD[0][0] {
		t.Error("same-job agents should see the self-pair penalty")
	}
	if agentD[0][0] != 0 {
		t.Error("diagonal should be zero")
	}
	bad := workload.Population{Jobs: []workload.Job{{Name: "ghost"}}}
	if _, err := ExpandToAgents(jobD, jobs, bad); err == nil {
		t.Error("unknown population job accepted")
	}
}

func TestSortedJobNames(t *testing.T) {
	_, jobs, db, p := testSetup(t)
	p.ProfileStandalone(jobs[1])
	p.ProfileStandalone(jobs[0])
	names := SortedJobNames(db)
	if len(names) != 2 || names[0] > names[1] {
		t.Errorf("names = %v", names)
	}
}

func TestSparsityEmpty(t *testing.T) {
	if got := Sparsity(nil); got != 0 {
		t.Errorf("empty sparsity = %v", got)
	}
}

func TestProfilerConcurrentUse(t *testing.T) {
	_, jobs, db, p := testSetup(t)
	var wg sync.WaitGroup
	for k := 0; k < 8; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			p.ProfilePair(jobs[k%4], jobs[(k+1)%4])
		}(k)
	}
	wg.Wait()
	if db.Len() != 16 {
		t.Errorf("db len = %d, want 16", db.Len())
	}
}

func TestMeasurementNoiseCanGoNegative(t *testing.T) {
	// The paper's footnote: variance occasionally makes colocated runs
	// look faster than standalone. With compute-bound pairs and noise,
	// some penalties should be negative.
	_, jobs, db, p := testSetup(t)
	p.MeasureNoise = 0.01
	swapt, _ := workload.Find(jobs, "swapt")
	vips, _ := workload.Find(jobs, "vips")
	small := []workload.Job{swapt, vips}
	for i := 0; i < 20; i++ {
		p.ProfilePair(swapt, vips)
	}
	p.ProfileStandalone(swapt)
	p.ProfileStandalone(vips)
	d, err := PenaltyMatrix(db, small)
	if err != nil {
		t.Fatal(err)
	}
	// Mean penalty for a compute pair is ~0; with noise the per-run values
	// straddle zero, so the average must sit very close to it.
	if math.Abs(d[0][1]) > 0.02 {
		t.Errorf("compute pair penalty %v should be ~0", d[0][1])
	}
}

func TestSparkLogMeasurementPath(t *testing.T) {
	cmp, jobs, db, p := testSetup(t)
	p.UseSparkLogs = true
	p.MeasureNoise = 0
	corr, _ := workload.Find(jobs, "correlation") // Spark
	dedup, _ := workload.Find(jobs, "dedup")      // PARSEC
	recCorr := p.ProfileStandalone(corr)
	recDedup := p.ProfileStandalone(dedup)

	// Spark throughput is quantized to whole tasks over the runtime but
	// must stay close to the direct measurement.
	direct := cmp.Solo(corr.Model).IPS
	if math.Abs(recCorr.ThroughputIPS-direct) > direct*0.1 {
		t.Errorf("log-path throughput %v too far from direct %v",
			recCorr.ThroughputIPS, direct)
	}
	// PARSEC path unaffected (perf-stat style, noiseless here).
	directD := cmp.Solo(dedup.Model).IPS
	if math.Abs(recDedup.ThroughputIPS-directD) > directD*0.02 {
		t.Errorf("parsec throughput %v should be direct %v",
			recDedup.ThroughputIPS, directD)
	}
	if db.Len() != 2 {
		t.Errorf("db len = %d", db.Len())
	}
}

func TestSparkLogPenaltiesStillSane(t *testing.T) {
	_, jobs, db, p := testSetup(t)
	p.UseSparkLogs = true
	corr, _ := workload.Find(jobs, "correlation")
	stream, _ := workload.Find(jobs, "stream")
	small := []workload.Job{corr, stream}
	p.ProfileStandalone(corr)
	p.ProfileStandalone(stream)
	p.ProfilePair(corr, stream)
	d, err := PenaltyMatrix(db, small)
	if err != nil {
		t.Fatal(err)
	}
	if d[0][1] < 0.05 || d[0][1] > 0.6 {
		t.Errorf("log-path penalty %v implausible for a contentious pair", d[0][1])
	}
}
