package profiler

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	_, jobs, db, p := testSetup(t)
	p.ProfileStandalone(jobs[0])
	p.ProfilePair(jobs[0], jobs[1])

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != db.Len() {
		t.Fatalf("loaded %d records, want %d", loaded.Len(), db.Len())
	}
	orig := db.Select(Query{})
	got := loaded.Select(Query{})
	for i := range orig {
		if orig[i] != got[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, orig[i], got[i])
		}
	}
	// Inserts continue after the highest loaded sequence number.
	rec := loaded.Insert(Record{Job: "new"})
	if rec.Seq != orig[len(orig)-1].Seq+1 {
		t.Errorf("next seq = %d, want %d", rec.Seq, orig[len(orig)-1].Seq+1)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("{\"Job\":\"x\"}\nnot json")); err == nil {
		t.Error("garbage line accepted")
	}
}

func TestLoadEmpty(t *testing.T) {
	db, err := Load(strings.NewReader(""))
	if err != nil || db.Len() != 0 {
		t.Errorf("empty load: len=%d err=%v", db.Len(), err)
	}
	// Fresh inserts start at 1.
	if rec := db.Insert(Record{Job: "x"}); rec.Seq != 1 {
		t.Errorf("seq = %d", rec.Seq)
	}
}

func TestSaveEmptyDatabase(t *testing.T) {
	var buf bytes.Buffer
	if err := NewDatabase().Save(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty database wrote %d bytes", buf.Len())
	}
}
