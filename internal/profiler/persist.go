package profiler

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Save serializes the database as JSON lines — one record per line — so
// profiles can be shipped between the coordinator and agents as files
// (the paper's agents exchange profiling data via network and files).
func (db *Database) Save(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	enc := json.NewEncoder(w)
	for _, r := range db.records {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("profiler: saving record %d: %w", r.Seq, err)
		}
	}
	return nil
}

// Load reads a database previously written by Save. Sequence numbers are
// preserved; subsequent inserts continue after the highest loaded Seq.
func Load(r io.Reader) (*Database, error) {
	db := NewDatabase()
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	for scanner.Scan() {
		line++
		raw := scanner.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("profiler: line %d: %w", line, err)
		}
		db.records = append(db.records, rec)
		if rec.Seq > db.nextSeq {
			db.nextSeq = rec.Seq
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return db, nil
}
