# Build, verification, and telemetry targets for the Cooper reproduction.

GO ?= go

.PHONY: all build lint vet test test-shuffle race chaos audit journey-soak ci bench bench-smoke bench-parallel bench-recommend bench-approx bench-compare bench-shard bench-rematch snapshot clean

all: build

build:
	$(GO) build ./...

# lint fails on any file gofmt would rewrite, then vets the module.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# test-shuffle reruns the suite with test and subtest order randomized,
# flushing out inter-test state leaks (shared registries, package-level
# sinks) that a fixed order can hide.
test-shuffle:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./...

# chaos runs the fault-injection suite under the race detector, three
# times over: the seeded 50-epoch soak plus every resilience regression
# (reaping, rejoin, deadlines, backoff, shutdown races). Repetition
# shakes out scheduling-dependent flakes the single-run suite would miss.
chaos:
	$(GO) test -race -count=3 ./internal/faults/
	$(GO) test -race -count=3 -run 'Chaos|Mute|Reap|Rejoin|Dial|Shutdown' ./internal/netproto/
	$(GO) test -race -count=3 ./cmd/cooperd/

# audit round-trips a real flight recording through the offline
# invariant auditor: cooper-sim writes a multi-epoch event log with
# -events-out, then cooper-replay replays it against the full invariant
# suite (stability, conservation, coverage, lifecycle, bracketing) and
# must exit zero. The in-process gates — the invariant suite run inside
# the chaos soaks — ride along via their test packages.
audit:
	$(GO) test -count=1 -run 'TestChaosSoak' ./internal/netproto/
	$(GO) test -count=1 -run 'TestEventLog|TestReplay' ./cmd/cooperd/ ./cmd/cooper-replay/
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/cooper-sim -trace -quick -epochs 5 -events-out "$$tmp/events.jsonl" >/dev/null && \
	$(GO) run ./cmd/cooper-replay "$$tmp/events.jsonl"

# journey-soak is the causal-tracing acceptance gate: a 50-epoch chaos
# soak (scheduled crashes and rejoins, live journey builder and auditor
# on one ring, tracing armed) under the race detector, asserting every
# registered agent yields a complete, gap-free journey with zero
# orphaned trace IDs, zero lifecycle violations, and byte-identical
# trace/span sequences across two same-seed runs.
journey-soak:
	$(GO) test -race -count=1 -run 'TestJourneySoak' ./cmd/cooperd/

# ci is the full verification gate: static checks, a clean build, the
# test suite under the race detector (plus a shuffled-order pass), the
# chaos suite, the flight-log audit round-trip, the journey/tracing
# soak, a one-iteration benchmark smoke run so benchmarks cannot
# bit-rot silently, the approximate-kernel recall/speedup gate, the
# sharded-market smoke gate, and the streaming-market repair gate.
ci: lint build race test-shuffle chaos audit journey-soak bench-smoke bench-approx bench-shard bench-rematch

bench:
	$(GO) test -bench=. -benchmem -run xxx .

# bench-smoke executes every benchmark in the module exactly once — a
# compile-and-run check, not a measurement.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run xxx ./...

# bench-parallel runs the serial-vs-parallel pipeline benchmarks whose
# last snapshot is committed as BENCH_parallel.json.
bench-parallel:
	$(GO) test -bench 'ProfilingCampaign|EpochPipeline' -benchtime=1s -run xxx .

# bench-recommend benchmarks the flat prediction kernel against the
# retained reference kernel (single thread, n = 20/100/400), the
# LSH-bucketed approximate kernel against the flat one (n = 2000/5000),
# and refreshes the committed snapshot BENCH_recommend.json. Fails if the
# flat kernel's n=400 speedup drops below 2x or the approximate gate
# (below) fails.
bench-recommend:
	@$(GO) run ./cmd/bench-compare -recommend-only -recommend-out BENCH_recommend.json

# bench-approx is the approximate-kernel acceptance gate: top-10 recall
# against the exact kernel must stay at or above 0.95 at n=400, and the
# approximate kernel must clear at least a 5x speedup over the exact
# flat kernel at n=2000. Skips the n=5000 approx-only measurement leg so
# the gate stays CI-sized.
bench-approx:
	@$(GO) run ./cmd/bench-compare -approx-only

# bench-shard is the sharded-market smoke gate: shards=1 must reproduce
# the unsharded epoch report byte for byte, and at 5000 agents on a 4+
# core host the 8-shard market must clear an epoch faster than the
# all-pairs one. The full agents-vs-epoch-time sweep behind the
# committed BENCH_shard.json is `go run ./cmd/cooper-loadgen -out ...`.
bench-shard:
	@$(GO) run ./cmd/cooper-loadgen -verify
	@$(GO) run ./cmd/cooper-loadgen -gate

# bench-rematch is the streaming-market acceptance gate: at 5000 agents
# with 2% of the population churning per epoch, incremental neighborhood
# repair must clear each churn epoch at least 5x faster than a forced
# from-scratch re-match over the identical trace, and the repair leg's
# flight log must replay through the invariant auditor with zero
# violations. Refreshes the committed snapshot BENCH_rematch.json.
bench-rematch:
	@$(GO) run ./cmd/bench-compare -rematch-only -rematch-out BENCH_rematch.json

# bench-compare fails if the parallel pipeline regresses below its serial
# counterpart (beyond a 15% noise allowance). On a single-core host
# (GOMAXPROCS=1) parallel cannot beat serial, so the gate only checks that
# the fan-out machinery adds no meaningful overhead; on multi-core hosts
# it also demands a real speedup from the campaign leg.
bench-compare:
	@$(GO) run ./cmd/bench-compare

# snapshot runs the telemetry-enabled epoch benchmark and archives the
# machine-readable metrics snapshot at telemetry.json.
snapshot:
	COOPER_TELEMETRY_OUT=$(CURDIR)/telemetry.json \
		$(GO) test -bench 'BenchmarkEpochThroughputTelemetry' -benchtime 20x -run xxx .
	@echo wrote $(CURDIR)/telemetry.json

clean:
	rm -f telemetry.json
	$(GO) clean ./...
