# Build, verification, and telemetry targets for the Cooper reproduction.

GO ?= go

.PHONY: all build vet test race ci bench snapshot clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# ci is the full verification gate: static checks, a clean build, and the
# test suite under the race detector.
ci: vet build race

bench:
	$(GO) test -bench=. -benchmem -run xxx .

# snapshot runs the telemetry-enabled epoch benchmark and archives the
# machine-readable metrics snapshot at telemetry.json.
snapshot:
	COOPER_TELEMETRY_OUT=$(CURDIR)/telemetry.json \
		$(GO) test -bench 'BenchmarkEpochThroughputTelemetry' -benchtime 20x -run xxx .
	@echo wrote $(CURDIR)/telemetry.json

clean:
	rm -f telemetry.json
	$(GO) clean ./...
